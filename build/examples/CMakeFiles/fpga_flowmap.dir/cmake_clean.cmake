file(REMOVE_RECURSE
  "CMakeFiles/fpga_flowmap.dir/fpga_flowmap.cpp.o"
  "CMakeFiles/fpga_flowmap.dir/fpga_flowmap.cpp.o.d"
  "fpga_flowmap"
  "fpga_flowmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_flowmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
