# Empty compiler generated dependencies file for fpga_flowmap.
# This may be replaced when dependencies are built.
