file(REMOVE_RECURSE
  "CMakeFiles/asic_mapping_flow.dir/asic_mapping_flow.cpp.o"
  "CMakeFiles/asic_mapping_flow.dir/asic_mapping_flow.cpp.o.d"
  "asic_mapping_flow"
  "asic_mapping_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asic_mapping_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
