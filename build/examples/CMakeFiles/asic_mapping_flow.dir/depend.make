# Empty dependencies file for asic_mapping_flow.
# This may be replaced when dependencies are built.
