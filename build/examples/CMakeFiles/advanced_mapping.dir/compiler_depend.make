# Empty compiler generated dependencies file for advanced_mapping.
# This may be replaced when dependencies are built.
