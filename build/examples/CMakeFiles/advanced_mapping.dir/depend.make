# Empty dependencies file for advanced_mapping.
# This may be replaced when dependencies are built.
