file(REMOVE_RECURSE
  "CMakeFiles/advanced_mapping.dir/advanced_mapping.cpp.o"
  "CMakeFiles/advanced_mapping.dir/advanced_mapping.cpp.o.d"
  "advanced_mapping"
  "advanced_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advanced_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
