// Thread-count invariance of supergate generation (the tsan tier also
// runs this under ThreadSanitizer): enumeration fans out per root gate
// but the merged, materialized library must be bit-identical for every
// worker count.
#include <gtest/gtest.h>

#include <string>

#include "gen/libraries.hpp"
#include "io/genlib.hpp"
#include "supergate/supergate.hpp"

namespace dagmap {
namespace {

constexpr const char* kTinyLib = R"(
GATE inv    1 O=!a;           PIN * INV 1 999 1.0 0.2 1.0 0.2
GATE nand2  2 O=!(a*b);       PIN * INV 1 999 1.2 0.25 1.2 0.25
GATE aoi22  4 O=!(a*b+c*d);   PIN * INV 1 999 1.8 0.3 1.8 0.3
)";

void expect_thread_invariant(const std::vector<GenlibGate>& base,
                             SupergateOptions options) {
  options.num_threads = 1;
  SupergateLibrary reference = generate_supergates(base, options);
  std::string expected = write_genlib(reference.gates);
  for (unsigned threads : {2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    options.num_threads = threads;
    SupergateLibrary sg = generate_supergates(base, options);
    EXPECT_EQ(write_genlib(sg.gates), expected);
    EXPECT_EQ(sg.stats.kept, reference.stats.kept);
    EXPECT_EQ(sg.stats.candidates, reference.stats.candidates);
    EXPECT_EQ(sg.stats.classes_seen, reference.stats.classes_seen);
  }
}

TEST(SupergateParallel, TinyLibraryBitIdenticalAcross128Threads) {
  expect_thread_invariant(parse_genlib(kTinyLib), {});
}

TEST(SupergateParallel, RandomLibrariesBitIdenticalAcross128Threads) {
  for (std::uint64_t seed : {7ull, 42ull, 1998ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::vector<GenlibGate> base =
        parse_genlib(make_random_genlib(seed, 10, 4));
    SupergateOptions options;
    options.max_steps_per_root = 20000;  // keep the tsan run quick
    expect_thread_invariant(base, options);
  }
}

TEST(SupergateParallel, TruncatedEnumerationStaysThreadInvariant) {
  // The step budget cuts each root's stream at a fixed prefix, so even
  // truncated generation must not depend on scheduling.
  SupergateOptions options;
  options.max_steps_per_root = 100;
  expect_thread_invariant(parse_genlib(kTinyLib), options);
}

}  // namespace
}  // namespace dagmap
