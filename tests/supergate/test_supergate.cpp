// Supergate generation: determinism, pruning, materialization through
// GENLIB, and the strict mapped-delay wins on the golden corpus that
// motivate the subsystem (richer library => bigger DAG-covering win).
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "core/dag_mapper.hpp"
#include "decomp/tech_decomp.hpp"
#include "io/blif.hpp"
#include "io/genlib.hpp"
#include "mapnet/write.hpp"
#include "sim/simulator.hpp"
#include "supergate/supergate.hpp"

namespace dagmap {
namespace {

std::string golden_path(const std::string& rel) {
  return std::string(DAGMAP_TEST_DATA_DIR) + "/golden/" + rel;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// inv + nand2 + aoi22: small but expressive enough that composition
// discovers genuinely new functions (e.g. XOR via aoi22 + inverters).
constexpr const char* kTinyLib = R"(
GATE inv    1 O=!a;           PIN * INV 1 999 1.0 0.2 1.0 0.2
GATE nand2  2 O=!(a*b);       PIN * INV 1 999 1.2 0.25 1.2 0.25
GATE aoi22  4 O=!(a*b+c*d);   PIN * INV 1 999 1.8 0.3 1.8 0.3
)";

TEST(Supergate, AugmentedLibraryExtendsBaseDeterministically) {
  std::vector<GenlibGate> base = parse_genlib(kTinyLib);
  SupergateLibrary sg = generate_supergates(base, {}, "tiny-sg");

  // Base gates come first, untouched and in input order.
  ASSERT_GE(sg.gates.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(sg.gates[i].name, base[i].name);
  }
  EXPECT_GT(sg.stats.kept, 0u);
  EXPECT_EQ(sg.gates.size(), base.size() + sg.stats.kept);
  EXPECT_EQ(sg.library.size(), sg.gates.size());
  EXPECT_TRUE(sg.library.is_complete_for_mapping());
  EXPECT_EQ(sg.stats.roots, base.size());  // all three participate
  EXPECT_EQ(sg.stats.truncated_roots, 0u);

  std::set<std::string> names;
  for (const GenlibGate& g : sg.gates) {
    EXPECT_TRUE(names.insert(g.name).second) << "duplicate name " << g.name;
  }

  // Pure function of (library, options): a second run is bit-identical.
  SupergateLibrary again = generate_supergates(base, {}, "tiny-sg");
  EXPECT_EQ(write_genlib(sg.gates), write_genlib(again.gates));
}

TEST(Supergate, DepthOneIsTheBaseLibrary) {
  std::vector<GenlibGate> base = parse_genlib(kTinyLib);
  SupergateOptions options;
  options.max_depth = 1;
  SupergateLibrary sg = generate_supergates(base, options);
  EXPECT_EQ(sg.stats.kept, 0u);
  EXPECT_EQ(write_genlib(sg.gates), write_genlib(base));
}

TEST(Supergate, PrunesDuplicatesOfBaseFunctions) {
  // inv(inv(a)) is a buffer (trivial); inv(nand2(a,b)) recomputes the
  // native and2 at delay 2.2 >= 2.0, so it loses the exact-function
  // comparison against the base gate (pruned_vs_base).
  std::vector<GenlibGate> base = parse_genlib(
      "GATE inv 1 O=!a; PIN * INV 1 999 1.0 0.2 1.0 0.2\n"
      "GATE nand2 2 O=!(a*b); PIN * INV 1 999 1.2 0.25 1.2 0.25\n"
      "GATE and2 3 O=a*b; PIN * NONINV 1 999 2.0 0.3 2.0 0.3\n");
  SupergateLibrary sg = generate_supergates(base);
  EXPECT_GT(sg.stats.pruned_trivial, 0u);
  EXPECT_GT(sg.stats.pruned_vs_base, 0u);
  EXPECT_GT(sg.stats.pruned_by_class, 0u);

  // No generated gate recomputes a base function without being faster.
  for (std::size_t i = base.size(); i < sg.gates.size(); ++i) {
    const Gate& g = sg.library.gates()[i];
    for (std::size_t b = 0; b < base.size(); ++b) {
      const Gate& bg = sg.library.gates()[b];
      if (g.function == bg.function) {
        EXPECT_LT(g.max_pin_delay(), bg.max_pin_delay())
            << g.name << " duplicates " << bg.name << " without a win";
      }
    }
  }
}

TEST(Supergate, AreaBoundIsRespected) {
  std::vector<GenlibGate> base = parse_genlib(kTinyLib);
  SupergateOptions options;
  options.max_area = 4.0;  // inv+aoi22 (5) no longer fits; inv+nand2 does
  SupergateLibrary sg = generate_supergates(base, options);
  for (std::size_t i = base.size(); i < sg.gates.size(); ++i) {
    EXPECT_LE(sg.gates[i].area, 4.0 + 1e-9);
  }
}

TEST(Supergate, StrictDelayWinsOnGoldenCircuits) {
  // The acceptance bar: the augmented library strictly improves mapped
  // delay on these golden pairs (and stays functionally correct).
  for (const std::string name : {"full_adder", "majxor", "gray3"}) {
    SCOPED_TRACE(name);
    Network circuit = parse_blif(slurp(golden_path(name + ".blif")));
    std::vector<GenlibGate> base =
        parse_genlib(slurp(golden_path(name + ".genlib")));
    GateLibrary base_lib = GateLibrary::from_genlib(base, name);
    SupergateLibrary sg = generate_supergates(base, {}, name + "-sg");

    Network subject = tech_decompose(circuit);
    MapResult base_map = dag_map(subject, base_lib, {});
    MapResult sg_map = dag_map(subject, sg.library, {});

    EXPECT_LT(sg_map.optimal_delay, base_map.optimal_delay - 1e-9)
        << "no strict win: base " << base_map.optimal_delay << " vs sg "
        << sg_map.optimal_delay;
    EXPECT_TRUE(
        check_equivalence(circuit, sg_map.netlist.to_network()).equivalent);
  }
}

TEST(Supergate, AugmentedNeverWorseAcrossCorpus) {
  // Monotonicity on every golden pair: the augmented library contains
  // every base gate, so its match set is a superset and labels can only
  // improve.
  for (const std::string name :
       {"full_adder", "mux4", "parity5", "majxor", "decoder2", "gray3"}) {
    SCOPED_TRACE(name);
    Network circuit = parse_blif(slurp(golden_path(name + ".blif")));
    std::vector<GenlibGate> base =
        parse_genlib(slurp(golden_path(name + ".genlib")));
    GateLibrary base_lib = GateLibrary::from_genlib(base, name);
    SupergateLibrary sg = generate_supergates(base, {}, name + "-sg");
    Network subject = tech_decompose(circuit);
    MapResult base_map = dag_map(subject, base_lib, {});
    MapResult sg_map = dag_map(subject, sg.library, {});
    EXPECT_LE(sg_map.optimal_delay, base_map.optimal_delay + 1e-9);
  }
}

TEST(Supergate, WriteParseRoundTripGivesIdenticalMatchResults) {
  // The satellite-4 guarantee: augmented libraries serialize to valid
  // GENLIB whose re-parse maps every circuit identically (same delay,
  // area, gate count, and byte-identical mapped netlist).
  for (const std::string name : {"full_adder", "majxor", "gray3"}) {
    SCOPED_TRACE(name);
    std::vector<GenlibGate> base =
        parse_genlib(slurp(golden_path(name + ".genlib")));
    SupergateLibrary sg = generate_supergates(base, {}, name + "-sg");

    std::string text = write_genlib(sg.gates);
    std::vector<GenlibGate> reparsed = parse_genlib(text);
    ASSERT_EQ(reparsed.size(), sg.gates.size());
    EXPECT_EQ(write_genlib(reparsed), text);  // text fixpoint
    GateLibrary relib = GateLibrary::from_genlib(reparsed, name + "-rt");

    Network circuit = parse_blif(slurp(golden_path(name + ".blif")));
    Network subject = tech_decompose(circuit);
    MapResult a = dag_map(subject, sg.library, {});
    MapResult b = dag_map(subject, relib, {});
    EXPECT_EQ(a.optimal_delay, b.optimal_delay);
    EXPECT_EQ(a.netlist.total_area(), b.netlist.total_area());
    EXPECT_EQ(write_mapped_blif(a.netlist), write_mapped_blif(b.netlist));
  }
}

TEST(Supergate, StepBudgetTruncatesDeterministically) {
  std::vector<GenlibGate> base = parse_genlib(kTinyLib);
  SupergateOptions tight;
  tight.max_steps_per_root = 50;
  SupergateLibrary a = generate_supergates(base, tight);
  SupergateLibrary b = generate_supergates(base, tight);
  EXPECT_GT(a.stats.truncated_roots, 0u);
  EXPECT_EQ(write_genlib(a.gates), write_genlib(b.gates));
}

}  // namespace
}  // namespace dagmap
