// Edge cases for mapping_stats (src/core/stats): degenerate networks
// with no gates, the fan-in histogram's overflow bucket, and the
// duplication / multi-fanout bookkeeping on a real mapping.
#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/dag_mapper.hpp"
#include "decomp/tech_decomp.hpp"
#include "library/standard_libs.hpp"

namespace dagmap {
namespace {

TEST(MappingStats, PiOnlyNetworkHasNoGatesAndZeroAverage) {
  Network subject("wires");
  NodeId a = subject.add_input("a");
  subject.add_output(a, "f");

  MappedNetlist mapped("wires");
  InstId ma = mapped.add_input("a");
  mapped.add_output(ma, "f");

  MappingStats s = mapping_stats(subject, mapped);
  EXPECT_EQ(s.subject_internal, 0u);
  EXPECT_EQ(s.subject_multi_fanout, 0u);
  EXPECT_EQ(s.gates, 0u);
  EXPECT_EQ(s.mapped_multi_fanout, 0u);
  EXPECT_EQ(s.total_gate_inputs, 0u);
  for (std::size_t bucket : s.fanin_histogram) EXPECT_EQ(bucket, 0u);
  // No gates: the average must be a clean 0, not a 0/0 NaN.
  EXPECT_EQ(s.average_gate_inputs(), 0.0);
}

TEST(MappingStats, ConstantNetworkHasNoGates) {
  Network subject("const");
  subject.add_output(subject.add_constant(true), "one");

  MappedNetlist mapped("const");
  mapped.add_output(mapped.add_constant(true), "one");

  MappingStats s = mapping_stats(subject, mapped);
  EXPECT_EQ(s.gates, 0u);
  EXPECT_EQ(s.average_gate_inputs(), 0.0);
  EXPECT_EQ(s.mapped_multi_fanout, 0u);
}

TEST(MappingStats, WideGateClampsIntoOverflowBucket) {
  // A 17-input cell must land in the last histogram bucket instead of
  // indexing out of bounds (the pre-fix code threw on >16 inputs).
  Gate wide;
  wide.name = "WIDE17";
  wide.area = 17.0;
  wide.pins.resize(17);

  Network subject("wide");
  std::vector<NodeId> subject_ins;
  for (int i = 0; i < 17; ++i)
    subject_ins.push_back(subject.add_input("i" + std::to_string(i)));
  subject.add_output(subject_ins[0], "f");

  MappedNetlist mapped("wide");
  std::vector<InstId> ins;
  for (int i = 0; i < 17; ++i)
    ins.push_back(mapped.add_input("i" + std::to_string(i)));
  InstId g = mapped.add_gate(&wide, ins);
  mapped.add_output(g, "f");

  MappingStats s = mapping_stats(subject, mapped);
  EXPECT_EQ(s.gates, 1u);
  EXPECT_EQ(s.fanin_histogram.back(), 1u);
  for (std::size_t i = 0; i + 1 < s.fanin_histogram.size(); ++i)
    EXPECT_EQ(s.fanin_histogram[i], 0u);
  // The clamped bucket does not distort the average: it uses the exact
  // input total, not bucket * index.
  EXPECT_EQ(s.total_gate_inputs, 17u);
  EXPECT_DOUBLE_EQ(s.average_gate_inputs(), 17.0);
}

TEST(MappingStats, HistogramAndAverageOverMixedArities) {
  GateLibrary lib = make_lib2_library();
  const Gate* inv = lib.inverter();
  const Gate* nand2 = lib.nand2();
  ASSERT_NE(inv, nullptr);
  ASSERT_NE(nand2, nullptr);

  Network subject("mix");
  NodeId a = subject.add_input("a");
  NodeId b = subject.add_input("b");
  NodeId n = subject.add_nand2(a, b);
  subject.add_output(subject.add_inv(n), "f");

  MappedNetlist mapped("mix");
  InstId ma = mapped.add_input("a");
  InstId mb = mapped.add_input("b");
  InstId mn = mapped.add_gate(nand2, {ma, mb});
  InstId mi = mapped.add_gate(inv, {mn});
  mapped.add_output(mi, "f");

  MappingStats s = mapping_stats(subject, mapped);
  EXPECT_EQ(s.gates, 2u);
  EXPECT_EQ(s.fanin_histogram[1], 1u);
  EXPECT_EQ(s.fanin_histogram[2], 1u);
  EXPECT_EQ(s.total_gate_inputs, 3u);
  EXPECT_DOUBLE_EQ(s.average_gate_inputs(), 1.5);
}

TEST(MappingStats, DuplicationCreatesMultiFanoutBookkeeping) {
  // x = NAND(a, b) feeds two NANDs: a multi-fanout subject node.  DAG
  // covering may duplicate x into both covers; either way the stats and
  // the mapper's duplication counters must stay consistent.
  Network circuit("dup");
  NodeId a = circuit.add_input("a");
  NodeId b = circuit.add_input("b");
  NodeId c = circuit.add_input("c");
  NodeId d = circuit.add_input("d");
  NodeId x = circuit.add_nand2(a, b);
  circuit.add_output(circuit.add_nand2(x, c), "f");
  circuit.add_output(circuit.add_nand2(x, d), "g");

  Network subject = tech_decompose(circuit);
  GateLibrary lib = make_lib2_library();
  MapResult r = dag_map(subject, lib, {});

  MappingStats s = mapping_stats(subject, r.netlist);
  EXPECT_GE(s.subject_multi_fanout, 1u);
  EXPECT_GT(s.gates, 0u);
  EXPECT_GT(s.average_gate_inputs(), 0.0);

  // Every duplicated node is a covered node, and every covered node is
  // an internal subject node.
  EXPECT_LE(r.duplicated_nodes, r.covered_distinct);
  EXPECT_LE(r.covered_distinct, s.subject_internal);
}

}  // namespace
}  // namespace dagmap
