// Choice networks as a first-class layer (§4's Lehman–Watanabe
// combination): the ChoiceClasses annotation, the variant generators,
// choice-aware mapping on both backends, and the determinism contracts
// (choices-off bit-identity, thread/partition bit-identity).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/dag_mapper.hpp"
#include "cutmap/cut_mapper.hpp"
#include "decomp/choices.hpp"
#include "decomp/tech_decomp.hpp"
#include "gen/circuits.hpp"
#include "io/blif.hpp"
#include "library/standard_libs.hpp"
#include "mapnet/write.hpp"
#include "sim/simulator.hpp"
#include "timing/timing.hpp"

namespace dagmap {
namespace {

constexpr double kEps = 1e-9;

// ---- decomposition + annotation ------------------------------------------

TEST(Choices, WideAndProducesAChoiceClass) {
  // A 4-input AND has distinct balanced and chain NAND decompositions.
  Network src("and4");
  std::vector<NodeId> ins;
  for (int i = 0; i < 4; ++i)
    ins.push_back(src.add_input("i" + std::to_string(i)));
  src.add_output(src.add_and(std::span<const NodeId>(ins)), "o");
  ChoiceDecomposition c = tech_decompose_choices(src);
  c.validate();
  EXPECT_GE(c.num_choices(), 1u);
  EXPECT_TRUE(c.classes.active());
  EXPECT_GE(c.classes.num_variants(), 1u);
  c.subject.check();
  EXPECT_TRUE(c.subject.is_subject_graph());
}

TEST(Choices, TwoInputNodesHaveNoChoices) {
  Network src("and2");
  NodeId a = src.add_input("a");
  NodeId b = src.add_input("b");
  src.add_output(src.add_and(a, b), "o");
  ChoiceDecomposition c = tech_decompose_choices(src);
  c.validate();
  EXPECT_EQ(c.num_choices(), 0u);
  EXPECT_FALSE(c.classes.active());
}

TEST(Choices, GeneratorMaskSelectsVariants) {
  Network src = make_alu(4);
  ChoiceOptions one;
  one.gens = kChoiceGenBalanced;  // one shape: nothing to choose between
  ChoiceDecomposition single = tech_decompose_choices(src, one);
  single.validate();

  ChoiceDecomposition all = tech_decompose_choices(src);
  all.validate();
  EXPECT_GE(all.classes.num_variants(), single.classes.num_variants());
  EXPECT_GE(all.num_choices(), 1u);
}

TEST(Choices, ParseChoiceGens) {
  EXPECT_EQ(parse_choice_gens(""), kChoiceGenAll);
  EXPECT_EQ(parse_choice_gens("all"), kChoiceGenAll);
  EXPECT_EQ(parse_choice_gens("balanced"), kChoiceGenBalanced);
  EXPECT_EQ(parse_choice_gens("chain,andor"),
            kChoiceGenChain | kChoiceGenAndOr);
  EXPECT_FALSE(parse_choice_gens("bogus").has_value());
  EXPECT_FALSE(parse_choice_gens("balanced,").has_value());
}

TEST(Choices, ClassStructureIsConsistent) {
  ChoiceDecomposition c = tech_decompose_choices(make_alu(4));
  c.validate();
  const ChoiceClasses& cls = c.classes;
  ASSERT_EQ(cls.size(), c.subject.size());
  std::size_t anchors = 0;
  for (NodeId n = 0; n < c.subject.size(); ++n) {
    std::span<const NodeId> mem = cls.members(n);
    if (mem.empty()) {
      EXPECT_EQ(cls.repr(n), n);
      EXPECT_GE(cls.anchor(n), n);  // identity or a later burst anchor
      continue;
    }
    ASSERT_GE(mem.size(), 2u);
    EXPECT_EQ(cls.repr(n), mem.front());
    EXPECT_EQ(cls.anchor(n), mem.back());
    for (std::size_t i = 1; i < mem.size(); ++i)
      EXPECT_LT(mem[i - 1], mem[i]);
    if (cls.is_class_anchor(n)) {
      ++anchors;
      EXPECT_EQ(n, mem.back());
    }
  }
  EXPECT_EQ(anchors, cls.num_choices());
}

TEST(Choices, VariantsAreFunctionallyEquivalent) {
  // Every member of a class must compute the same function of the PIs.
  ChoiceDecomposition c = tech_decompose_choices(make_comparator(4));
  c.validate();
  const Network& sg = c.subject;
  std::vector<std::uint64_t> in(sg.num_inputs());
  std::uint64_t s = 99;
  for (auto& w : in) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    w = s;
  }
  Network probe = sg;
  std::vector<std::pair<std::size_t, std::size_t>> spans;  // (start, count)
  std::size_t base = probe.num_outputs();
  std::size_t k = 0;
  for (NodeId n = 0; n < sg.size(); ++n) {
    if (!c.classes.is_class_anchor(n)) continue;
    std::span<const NodeId> mem = c.classes.members(n);
    for (NodeId m : mem) probe.add_output(m, "probe" + std::to_string(k++));
    spans.push_back({base, mem.size()});
    base += mem.size();
  }
  ASSERT_FALSE(spans.empty());
  auto out = simulate64(probe, in);
  for (auto [start, count] : spans)
    for (std::size_t i = 1; i < count; ++i)
      EXPECT_EQ(out[start], out[start + i]) << "class at output " << start;
}

// ---- mapping: delay bound, equivalence, stats ----------------------------

TEST(ChoiceMap, NeverWorseThanChoicesOffOnBothBackends) {
  GateLibrary lib = make_lib2_library();
  for (auto& b : make_small_suite()) {
    ChoiceDecomposition c = tech_decompose_choices(b.network);
    c.validate();
    MapResult base = dag_map(c.subject, lib);
    MapResult on = dag_map(c.subject, lib, {.choices = &c.classes});
    // Guaranteed: per-class pricing only ever lowers a leaf price.
    EXPECT_LE(on.optimal_delay, base.optimal_delay + kEps) << b.name;

    CutMapOptions copt;
    copt.choices = &c.classes;
    MapResult cut_on = cut_map(c.subject, lib, copt);
    // The cut backend's candidates are a superset of the structural
    // matcher's, so the same baseline bounds it.
    EXPECT_LE(cut_on.optimal_delay, base.optimal_delay + kEps) << b.name;
  }
}

TEST(ChoiceMap, ResultIsEquivalentToSourceOnBothBackends) {
  GateLibrary lib = make_lib2_library();
  for (auto& b : make_small_suite()) {
    ChoiceDecomposition c = tech_decompose_choices(b.network);
    c.validate();
    MapResult r = dag_map(c.subject, lib, {.choices = &c.classes});
    r.netlist.check();
    EXPECT_TRUE(check_equivalence(b.network, r.netlist.to_network()).equivalent)
        << b.name << " structural";
    if (c.classes.active()) {
      EXPECT_EQ(r.choice_classes, c.num_choices()) << b.name;
      EXPECT_EQ(r.choice_variants, c.classes.num_variants()) << b.name;
    }

    CutMapOptions copt;
    copt.choices = &c.classes;
    MapResult rc = cut_map(c.subject, lib, copt);
    rc.netlist.check();
    EXPECT_TRUE(
        check_equivalence(b.network, rc.netlist.to_network()).equivalent)
        << b.name << " cuts";
  }
}

TEST(ChoiceMap, MappedDelayMatchesReportedOptimum) {
  GateLibrary lib = make_lib2_library();
  ChoiceDecomposition c = tech_decompose_choices(make_alu(4));
  c.validate();
  MapResult r = dag_map(c.subject, lib, {.choices = &c.classes});
  EXPECT_NEAR(circuit_delay(r.netlist), r.optimal_delay, kEps);
}

TEST(ChoiceMap, AreaRecoveryAndRoundsPreserveTheChoiceDelay) {
  GateLibrary lib = make_lib2_library();
  ChoiceDecomposition c = tech_decompose_choices(make_alu(4));
  c.validate();
  MapResult fast = dag_map(c.subject, lib, {.choices = &c.classes});
  MapResult rec = dag_map(c.subject, lib,
                          {.area_recovery = true, .choices = &c.classes});
  EXPECT_NEAR(rec.optimal_delay, fast.optimal_delay, kEps);
  EXPECT_NEAR(circuit_delay(rec.netlist), fast.optimal_delay, kEps);
  EXPECT_TRUE(
      check_equivalence(c.subject, rec.netlist.to_network()).equivalent);

  CutMapOptions copt;
  copt.choices = &c.classes;
  MapResult r1 = cut_map(c.subject, lib, copt);
  copt.rounds = 3;
  MapResult r3 = cut_map(c.subject, lib, copt);
  EXPECT_NEAR(r3.optimal_delay, r1.optimal_delay, kEps);
  EXPECT_LE(r3.netlist.total_area(), r1.netlist.total_area() + kEps);
  EXPECT_TRUE(check_equivalence(c.subject, r3.netlist.to_network()).equivalent);
}

// ---- edge cases -----------------------------------------------------------

TEST(ChoiceMap, LatchDInputsMayReferenceVariants) {
  // Sequential circuits: latch D inputs reference class anchors in the
  // choice subject and get redirected to the winning variant at cover
  // time — latch count and sequential behaviour must survive.
  GateLibrary lib = make_lib2_library();
  Network src = make_sequential_pipeline(3, 6, 13);
  ChoiceDecomposition c = tech_decompose_choices(src);
  c.validate();
  MapResult r = dag_map(c.subject, lib, {.choices = &c.classes});
  r.netlist.check();
  EXPECT_EQ(r.netlist.latches().size(), src.num_latches());
  EXPECT_TRUE(check_equivalence(src, r.netlist.to_network()).equivalent);

  CutMapOptions copt;
  copt.choices = &c.classes;
  MapResult rc = cut_map(c.subject, lib, copt);
  rc.netlist.check();
  EXPECT_EQ(rc.netlist.latches().size(), src.num_latches());
  EXPECT_TRUE(check_equivalence(src, rc.netlist.to_network()).equivalent);
}

TEST(ChoiceMap, DeadVariantsAreNotEmitted) {
  // When a fold picks a variant, the losing variants' logic cones must
  // not be emitted unless something else still needs them.  The subject
  // carries every variant; a cover that emitted the dead ones too would
  // blow the gate count up by the variant overhead — covering only the
  // chosen variants keeps it in the same ballpark as the
  // single-structure mapping (generous 2x slack, no flakiness).
  GateLibrary lib = make_lib2_library();
  Network src = make_alu(4);
  Network plain = tech_decompose(src);
  ChoiceDecomposition c = tech_decompose_choices(src);
  c.validate();
  MapResult on = dag_map(c.subject, lib, {.choices = &c.classes});
  on.netlist.check();
  MapResult single = dag_map(plain, lib);
  EXPECT_LE(on.netlist.num_gates(), 2 * single.netlist.num_gates());
  EXPECT_TRUE(check_equivalence(src, on.netlist.to_network()).equivalent);
}

TEST(ChoiceMap, ChoicesCanBeatSingleShapes) {
  // A 6-input AND: the choice mapping must match the better of the two
  // fixed single-shape decompositions it contains variants of.
  GateLibrary lib = make_lib2_library();
  Network src("and6");
  std::vector<NodeId> ins;
  for (int i = 0; i < 6; ++i)
    ins.push_back(src.add_input("i" + std::to_string(i)));
  src.add_output(src.add_and(std::span<const NodeId>(ins)), "o");

  ChoiceDecomposition c = tech_decompose_choices(src);
  c.validate();
  MapResult rx = dag_map(c.subject, lib, {.choices = &c.classes});

  TechDecompOptions bal, chain;
  chain.shape = DecompShape::Chain;
  MapResult rb = dag_map(tech_decompose(src, bal), lib);
  MapResult rc = dag_map(tech_decompose(src, chain), lib);
  EXPECT_LE(rx.optimal_delay,
            std::min(rb.optimal_delay, rc.optimal_delay) + kEps);
}

// ---- determinism contracts ------------------------------------------------

TEST(ChoiceMap, BitIdenticalAcrossThreadCounts) {
  GateLibrary lib = make_lib2_library();
  ChoiceDecomposition c = tech_decompose_choices(make_alu(4));
  c.validate();

  DagMapOptions base;
  base.choices = &c.classes;
  MapResult r1 = dag_map(c.subject, lib, base);
  std::string blif1 = write_mapped_blif(r1.netlist);
  for (unsigned threads : {2u, 8u}) {
    DagMapOptions o = base;
    o.num_threads = threads;
    MapResult r = dag_map(c.subject, lib, o);
    EXPECT_EQ(r.label, r1.label) << threads << " threads";
    EXPECT_EQ(write_mapped_blif(r.netlist), blif1) << threads << " threads";
  }

  CutMapOptions cbase;
  cbase.choices = &c.classes;
  MapResult q1 = cut_map(c.subject, lib, cbase);
  std::string cblif1 = write_mapped_blif(q1.netlist);
  for (unsigned threads : {2u, 8u}) {
    CutMapOptions o = cbase;
    o.num_threads = threads;
    MapResult q = cut_map(c.subject, lib, o);
    EXPECT_EQ(q.label, q1.label) << threads << " threads (cuts)";
    EXPECT_EQ(write_mapped_blif(q.netlist), cblif1)
        << threads << " threads (cuts)";
  }
}

TEST(ChoiceMap, PartitionedPipelineIsBitIdentical) {
  GateLibrary lib = make_lib2_library();
  ChoiceDecomposition c = tech_decompose_choices(make_alu(4));
  c.validate();

  DagMapOptions mono;
  mono.partition_mode = PartitionMode::Off;
  mono.choices = &c.classes;
  MapResult rm = dag_map(c.subject, lib, mono);

  DagMapOptions part = mono;
  part.partition_mode = PartitionMode::On;
  part.partition_window = 16;
  part.num_threads = 2;
  MapResult rp = dag_map(c.subject, lib, part);
  EXPECT_TRUE(rp.partitioned);
  EXPECT_EQ(rp.label, rm.label);
  EXPECT_EQ(rp.optimal_delay, rm.optimal_delay);
  EXPECT_EQ(write_mapped_blif(rp.netlist), write_mapped_blif(rm.netlist));
}

TEST(ChoiceMap, InertAnnotationIsBitIdenticalToNull) {
  // The choices-off determinism contract on the golden corpus: a
  // finalized but class-free annotation must take the historical code
  // path exactly — labels and BLIF bytes equal to the null-pointer run.
  auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  const std::string dir = std::string(DAGMAP_TEST_DATA_DIR) + "/golden/";
  for (const char* stem :
       {"gray3", "full_adder", "decoder2", "mux4", "parity5", "majxor"}) {
    SCOPED_TRACE(stem);
    Network circuit = parse_blif(slurp(dir + stem + ".blif"));
    GateLibrary lib =
        GateLibrary::from_genlib_text(slurp(dir + stem + ".genlib"), stem);
    Network subject = tech_decompose(circuit);

    ChoiceClasses inert;
    inert.finalize(subject.size());
    ASSERT_FALSE(inert.active());

    MapResult null_run = dag_map(subject, lib);
    MapResult inert_run = dag_map(subject, lib, {.choices = &inert});
    EXPECT_EQ(inert_run.label, null_run.label);
    EXPECT_EQ(inert_run.optimal_delay, null_run.optimal_delay);
    EXPECT_EQ(write_mapped_blif(inert_run.netlist),
              write_mapped_blif(null_run.netlist));
    EXPECT_EQ(inert_run.choice_classes, 0u);

    MapResult cut_null = cut_map(subject, lib);
    CutMapOptions copt;
    copt.choices = &inert;
    MapResult cut_inert = cut_map(subject, lib, copt);
    EXPECT_EQ(cut_inert.label, cut_null.label);
    EXPECT_EQ(write_mapped_blif(cut_inert.netlist),
              write_mapped_blif(cut_null.netlist));
  }
}

}  // namespace
}  // namespace dagmap
