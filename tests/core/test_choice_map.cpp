// Tests for choice-based decomposition and mapping (§4's Lehman–Watanabe
// combination).
#include "core/choice_map.hpp"

#include <gtest/gtest.h>

#include "gen/circuits.hpp"
#include "library/standard_libs.hpp"
#include "sim/simulator.hpp"
#include "timing/timing.hpp"

namespace dagmap {
namespace {

TEST(Choices, WideAndProducesAChoiceClass) {
  // A 4-input AND has distinct balanced and chain NAND decompositions.
  Network src("and4");
  std::vector<NodeId> ins;
  for (int i = 0; i < 4; ++i)
    ins.push_back(src.add_input("i" + std::to_string(i)));
  src.add_output(src.add_and(std::span<const NodeId>(ins)), "o");
  ChoiceDecomposition c = tech_decompose_choices(src);
  EXPECT_GE(c.num_choices(), 1u);
  c.subject.check();
  EXPECT_TRUE(c.subject.is_subject_graph());
}

TEST(Choices, TwoInputNodesHaveNoChoices) {
  Network src("and2");
  NodeId a = src.add_input("a");
  NodeId b = src.add_input("b");
  src.add_output(src.add_and(a, b), "o");
  ChoiceDecomposition c = tech_decompose_choices(src);
  EXPECT_EQ(c.num_choices(), 0u);
}

TEST(Choices, ReprAndMembersConsistent) {
  ChoiceDecomposition c = tech_decompose_choices(make_alu(4));
  const Network& sg = c.subject;
  ASSERT_EQ(c.repr.size(), sg.size());
  for (NodeId n = 0; n < sg.size(); ++n) {
    NodeId rep = c.repr[n];
    ASSERT_LT(rep, sg.size());
    // Members lists of representatives contain their nodes.
    if (rep == n) {
      ASSERT_FALSE(c.members[n].empty());
      EXPECT_EQ(c.members[n][0], n);
    }
  }
}

TEST(Choices, VariantsAreFunctionallyEquivalent) {
  // For each multi-member class, the variants must compute the same
  // function of the PIs (checked via simulation on a small circuit).
  Network src("cmp");
  src = make_comparator(4);
  ChoiceDecomposition c = tech_decompose_choices(src);
  const Network& sg = c.subject;
  std::vector<std::uint64_t> in(sg.num_inputs());
  std::uint64_t s = 99;
  for (auto& w : in) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    w = s;
  }
  // Simulate every node by augmenting the network with outputs? Use
  // simulate64 on a copy with extra outputs per class member.
  Network probe = sg;
  std::vector<std::pair<std::size_t, std::size_t>> pairs;  // output idx pairs
  std::size_t base = probe.num_outputs();
  std::size_t k = 0;
  for (NodeId rep = 0; rep < sg.size(); ++rep) {
    if (c.members[rep].size() < 2) continue;
    for (NodeId m : c.members[rep])
      probe.add_output(m, "probe" + std::to_string(k++));
    pairs.push_back({base, c.members[rep].size()});
    base += c.members[rep].size();
  }
  auto out = simulate64(probe, in);
  for (auto [start, count] : pairs)
    for (std::size_t i = 1; i < count; ++i)
      EXPECT_EQ(out[start], out[start + i]) << "class at output " << start;
}

TEST(ChoiceMap, NeverWorseThanSingleDecomposition) {
  GateLibrary lib = make_lib2_library();
  for (auto& b : make_small_suite()) {
    Network single = tech_decompose(b.network);
    ChoiceDecomposition c = tech_decompose_choices(b.network);
    MapResult r1 = dag_map(single, lib);
    MapResult r2 = dag_map_choices(c, lib);
    // The balanced variant is always available, so choices cannot lose
    // (both use the same balanced subject modulo strash ordering).
    EXPECT_LE(r2.optimal_delay, r1.optimal_delay + 1e-9) << b.name;
  }
}

TEST(ChoiceMap, ResultIsEquivalentToSource) {
  GateLibrary lib = make_lib2_library();
  for (auto& b : make_small_suite()) {
    ChoiceDecomposition c = tech_decompose_choices(b.network);
    MapResult r = dag_map_choices(c, lib);
    r.netlist.check();
    // Compare against the source network (same PI/PO interface).
    EXPECT_TRUE(
        check_equivalence(b.network, r.netlist.to_network()).equivalent)
        << b.name;
  }
}

TEST(ChoiceMap, MappedDelayMatchesReportedOptimum) {
  GateLibrary lib = make_lib2_library();
  ChoiceDecomposition c = tech_decompose_choices(make_alu(4));
  MapResult r = dag_map_choices(c, lib);
  EXPECT_NEAR(circuit_delay(r.netlist), r.optimal_delay, 1e-9);
}

TEST(ChoiceMap, ChoicesCanStrictlyWin) {
  // A 6-input AND chain favours the chain decomposition when the library
  // has nand4 (covers 3 chain levels); the balanced tree alone can be
  // suboptimal.  At minimum the choice result must match the better of
  // the two single-shape decompositions.
  GateLibrary lib = make_lib2_library();
  Network src("and6");
  std::vector<NodeId> ins;
  for (int i = 0; i < 6; ++i)
    ins.push_back(src.add_input("i" + std::to_string(i)));
  src.add_output(src.add_and(std::span<const NodeId>(ins)), "o");

  TechDecompOptions bal, chain;
  chain.shape = DecompShape::Chain;
  MapResult rb = dag_map(tech_decompose(src, bal), lib);
  MapResult rc = dag_map(tech_decompose(src, chain), lib);
  ChoiceDecomposition c = tech_decompose_choices(src);
  MapResult rx = dag_map_choices(c, lib);
  EXPECT_LE(rx.optimal_delay,
            std::min(rb.optimal_delay, rc.optimal_delay) + 1e-9);
}

TEST(ChoiceMap, SequentialChoices) {
  GateLibrary lib = make_lib2_library();
  Network src = make_sequential_pipeline(3, 6, 13);
  ChoiceDecomposition c = tech_decompose_choices(src);
  MapResult r = dag_map_choices(c, lib);
  r.netlist.check();
  EXPECT_EQ(r.netlist.latches().size(), src.num_latches());
  EXPECT_TRUE(check_equivalence(src, r.netlist.to_network()).equivalent);
}

}  // namespace
}  // namespace dagmap
