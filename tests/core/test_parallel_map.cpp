// Parallel wavefront labeling: thread-count invariance of dag_map, and
// the ThreadPool primitive itself.  This binary carries the `tsan` CTest
// label; build with -DDAGMAP_SANITIZE=thread and run `ctest -L tsan` to
// exercise the parallel labeler under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "check/fuzz_pipeline.hpp"
#include "core/dag_mapper.hpp"
#include "core/parallel.hpp"
#include "decomp/tech_decomp.hpp"
#include "gen/circuits.hpp"
#include "library/standard_libs.hpp"
#include "treemap/tree_mapper.hpp"

namespace dagmap {
namespace {

// ---- ThreadPool ---------------------------------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(hits.size(), [&](std::size_t i, unsigned) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> sum{0};
  for (int job = 0; job < 50; ++job)
    pool.parallel_for(10, [&](std::size_t i, unsigned) {
      sum.fetch_add(static_cast<std::int64_t>(i), std::memory_order_relaxed);
    });
  EXPECT_EQ(sum.load(), 50 * 45);
}

TEST(ThreadPool, PropagatesBodyException) {
  for (unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(100,
                          [&](std::size_t i, unsigned) {
                            if (i == 37) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    // The pool survives a throwing job.
    std::atomic<int> ran{0};
    pool.parallel_for(8, [&](std::size_t, unsigned) { ++ran; });
    EXPECT_EQ(ran.load(), 8);
  }
}

TEST(ThreadPool, ResolveNumThreads) {
  EXPECT_EQ(resolve_num_threads(1), 1u);
  EXPECT_EQ(resolve_num_threads(7), 7u);
  EXPECT_GE(resolve_num_threads(0), 1u);  // hardware concurrency
}

// ---- dag_map thread-count invariance ------------------------------------

void expect_identical_maps(const Network& subject, const GateLibrary& lib,
                           DagMapOptions base) {
  base.num_threads = 1;
  MapResult seq = dag_map(subject, lib, base);
  for (unsigned threads : {2u, 8u}) {
    DagMapOptions o = base;
    o.num_threads = threads;
    MapResult par = dag_map(subject, lib, o);
    // Bit-identical labels and delay.
    ASSERT_EQ(par.label.size(), seq.label.size());
    for (std::size_t i = 0; i < seq.label.size(); ++i)
      EXPECT_EQ(par.label[i], seq.label[i]) << "label of node " << i;
    EXPECT_EQ(par.optimal_delay, seq.optimal_delay);
    // Identical selected gates: same netlist size, area, and histogram.
    EXPECT_EQ(par.netlist.num_gates(), seq.netlist.num_gates());
    EXPECT_EQ(par.netlist.total_area(), seq.netlist.total_area());
    EXPECT_EQ(par.netlist.gate_histogram(), seq.netlist.gate_histogram());
    // Identical work: the same matches were enumerated.
    EXPECT_EQ(par.matches_enumerated, seq.matches_enumerated);
    EXPECT_EQ(par.match_attempts, seq.match_attempts);
    EXPECT_EQ(par.match_prunes, seq.match_prunes);
  }
}

TEST(ParallelDagMap, DeterministicAcrossThreadCountsOnSuite) {
  GateLibrary lib = make_lib2_library();
  for (const BenchmarkCircuit& bc : make_small_suite()) {
    Network subject = tech_decompose(bc.network);
    expect_identical_maps(subject, lib, {});
  }
}

TEST(ParallelDagMap, DeterministicWithRichLibrary) {
  GateLibrary lib = make_44_library(2);
  Network subject = tech_decompose(make_array_multiplier(6));
  expect_identical_maps(subject, lib, {});
}

TEST(ParallelDagMap, DeterministicWithExtendedMatchesAndAreaRecovery) {
  GateLibrary lib = make_lib2_library();
  Network subject = tech_decompose(make_alu(8));
  DagMapOptions o;
  o.match_class = MatchClass::Extended;
  expect_identical_maps(subject, lib, o);
  DagMapOptions ar;
  ar.area_recovery = true;
  expect_identical_maps(subject, lib, ar);
}

TEST(ParallelDagMap, FuzzInvariantSuiteAcrossThreadCounts) {
  // The metamorphic fuzz suite under this binary's `tsan` label: each
  // instance's ThreadDeterminism invariant maps with num_threads 1, 2
  // and 0 (all hardware threads) and requires bit-identical labels and
  // netlists, so `-DDAGMAP_SANITIZE=thread` sweeps the whole
  // decompose -> match -> label -> cover pipeline, not just ThreadPool.
  FuzzOptions opt;  // full invariant suite, random circuit + library
  for (std::uint64_t seed = 500; seed < 512; ++seed) {
    FuzzReport r = run_fuzz_seed(seed, opt);
    EXPECT_TRUE(r.ok) << r.to_string();
  }
}

TEST(ParallelDagMap, ParallelResultIsEquivalentAndOptimal) {
  // The parallel path must keep the mapper's semantic guarantees, not
  // just match the sequential one: verify against the tree mapper bound.
  GateLibrary lib = make_lib2_library();
  Network subject = tech_decompose(make_comparator(8));
  DagMapOptions o;
  o.num_threads = 4;
  MapResult dag = dag_map(subject, lib, o);
  MapResult tree = tree_map(subject, lib);
  EXPECT_LE(dag.optimal_delay, tree.optimal_delay + 1e-9);
}

}  // namespace
}  // namespace dagmap
