// Tests for the delay-optimal DAG mapper (the paper's contribution),
// including the Figure 2 duplication scenario and optimality properties.
#include "core/dag_mapper.hpp"

#include <gtest/gtest.h>

#include "decomp/tech_decomp.hpp"
#include "gen/circuits.hpp"
#include "netlist/assert.hpp"
#include "library/standard_libs.hpp"
#include "sim/simulator.hpp"
#include "timing/timing.hpp"
#include "treemap/tree_mapper.hpp"

namespace dagmap {
namespace {

Network full_adder_subject() {
  Network n("fa");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId cin = n.add_input("cin");
  NodeId sum = n.add_xor(n.add_xor(a, b), cin);
  NodeId cout = n.add_maj3(a, b, cin);
  n.add_output(sum, "sum");
  n.add_output(cout, "cout");
  return tech_decompose(n);
}

TEST(DagMapper, MapsFullAdderCorrectly) {
  Network sg = full_adder_subject();
  GateLibrary lib = make_lib2_library();
  MapResult r = dag_map(sg, lib);
  r.netlist.check();
  EXPECT_GT(r.netlist.num_gates(), 0u);
  EXPECT_TRUE(check_equivalence(sg, r.netlist.to_network()).equivalent);
}

TEST(DagMapper, MappedDelayEqualsOptimalLabel) {
  Network sg = full_adder_subject();
  GateLibrary lib = make_lib2_library();
  MapResult r = dag_map(sg, lib);
  double mapped_delay = circuit_delay(r.netlist);
  EXPECT_NEAR(mapped_delay, r.optimal_delay, 1e-9);
}

TEST(DagMapper, NeverWorseThanTreeMapping) {
  GateLibrary lib2 = make_lib2_library();
  GateLibrary l441 = make_44_library(1);
  for (const GateLibrary* lib : {&lib2, &l441}) {
    Network sg = full_adder_subject();
    MapResult dag = dag_map(sg, *lib);
    MapResult tree = tree_map(sg, *lib);
    EXPECT_LE(dag.optimal_delay, tree.optimal_delay + 1e-9) << lib->name();
    EXPECT_TRUE(check_equivalence(sg, tree.netlist.to_network()).equivalent);
  }
}

// ---- Figure 2: duplication of subject-graph nodes ----------------------
//
// Subject: mid = NAND(a,b) fans out to two outputs o1 = NAND(mid, c),
// o2 = NAND(mid, d).  The library has a fast 3-input gate whose pattern
// is NAND(NAND(p0,p1), p2).  Tree covering cannot use it (mid is a
// multi-fanout point, so no exact match), DAG covering uses it twice,
// duplicating mid — and creating new multi-fanout points at a and b.
TEST(DagMapper, Figure2DuplicationBeatsTreeMapping) {
  GateLibrary lib = GateLibrary::from_genlib_text(
      "GATE inv 1 O=!a;\n PIN a INV 1 999 1.0 0 1.0 0\n"
      "GATE nand2 2 O=!(a*b);\n PIN * INV 1 999 1.2 0 1.2 0\n"
      "GATE big3 3 O=a*b+!c;\n PIN * UNKNOWN 1 999 1.0 0 1.0 0\n",
      "fig2");
  // big3 = ab + !c = !(!(ab) * c) -> pattern NAND(NAND(p0,p1),p2)
  // (chain lowering); verify it matches.
  Network sg("fig2");
  NodeId a = sg.add_input("a");
  NodeId b = sg.add_input("b");
  NodeId c = sg.add_input("c");
  NodeId d = sg.add_input("d");
  NodeId mid = sg.add_nand2(a, b);
  NodeId o1 = sg.add_nand2(mid, c);
  NodeId o2 = sg.add_nand2(mid, d);
  sg.add_output(o1, "o1");
  sg.add_output(o2, "o2");

  MapResult dag = dag_map(sg, lib);
  MapResult tree = tree_map(sg, lib);

  // DAG: both outputs implemented by one big3 gate each (delay 1.0).
  EXPECT_NEAR(dag.optimal_delay, 1.0, 1e-9);
  // Tree: mid must be mapped separately (nand2), then another nand2:
  // 1.2 + 1.2.
  EXPECT_NEAR(tree.optimal_delay, 2.4, 1e-9);
  // Both are correct.
  EXPECT_TRUE(check_equivalence(sg, dag.netlist.to_network()).equivalent);
  EXPECT_TRUE(check_equivalence(sg, tree.netlist.to_network()).equivalent);
  // Duplication: the DAG mapping uses two big3 instances and no nand2.
  auto hist = dag.netlist.gate_histogram();
  EXPECT_EQ(hist["big3"], 2u);
  EXPECT_EQ(hist.count("nand2"), 0u);
  // Tree mapping keeps the multi-fanout point: exactly 3 nand2 gates.
  auto thist = tree.netlist.gate_histogram();
  EXPECT_EQ(thist["nand2"], 3u);
}

TEST(DagMapper, LabelsAreMonotoneAlongPaths) {
  Network sg = full_adder_subject();
  GateLibrary lib = make_lib2_library();
  MapResult r = dag_map(sg, lib);
  // Every internal node's label is positive and at least the label of
  // the fastest fanin plus the smallest pin delay in the library.
  for (NodeId n = 0; n < sg.size(); ++n) {
    if (sg.is_source(n)) {
      EXPECT_EQ(r.label[n], 0.0);
    } else {
      EXPECT_GT(r.label[n], 0.0);
    }
  }
}

TEST(DagMapper, BruteForceOptimalOnTinyGraph) {
  // Exhaustively verify optimality on a tiny subject graph: the label at
  // the output must equal the minimum over all covers, which for this
  // 3-node graph we can enumerate by hand:
  //   o = INV(NAND(a,b)):  covers: {inv+nand2} or {and2}.
  GateLibrary lib = make_lib2_library();  // and2 delay 1.6; inv 1.0+nand2 1.2
  Network sg("tiny");
  NodeId a = sg.add_input("a");
  NodeId b = sg.add_input("b");
  NodeId g = sg.add_nand2(a, b);
  NodeId h = sg.add_inv(g);
  sg.add_output(h, "o");
  MapResult r = dag_map(sg, lib);
  EXPECT_NEAR(r.optimal_delay, 1.6, 1e-9);  // and2 wins over 2.2
  EXPECT_EQ(r.netlist.num_gates(), 1u);
}

TEST(DagMapper, ExtendedMatchesNeverWorse) {
  GateLibrary lib = make_lib2_library();
  Network sg = full_adder_subject();
  DagMapOptions std_opt, ext_opt;
  ext_opt.match_class = MatchClass::Extended;
  MapResult rs = dag_map(sg, lib, std_opt);
  MapResult re = dag_map(sg, lib, ext_opt);
  EXPECT_LE(re.optimal_delay, rs.optimal_delay + 1e-9);
  EXPECT_TRUE(check_equivalence(sg, re.netlist.to_network()).equivalent);
}

TEST(DagMapper, AreaRecoveryKeepsOptimalDelay) {
  GateLibrary lib = make_lib2_library();
  Network sg = full_adder_subject();
  DagMapOptions plain, recover;
  recover.area_recovery = true;
  MapResult r1 = dag_map(sg, lib, plain);
  MapResult r2 = dag_map(sg, lib, recover);
  EXPECT_NEAR(circuit_delay(r2.netlist), r1.optimal_delay, 1e-9);
  EXPECT_LE(r2.netlist.total_area(), r1.netlist.total_area() + 1e-9);
  EXPECT_TRUE(check_equivalence(sg, r2.netlist.to_network()).equivalent);
}

TEST(DagMapper, TargetDelayRelaxation) {
  GateLibrary lib = make_lib2_library();
  Network sg = tech_decompose(make_comparator(8));
  MapResult fastest = dag_map(sg, lib);
  DagMapOptions relax;
  relax.area_recovery = true;
  relax.target_delay = fastest.optimal_delay * 1.25;
  MapResult r = dag_map(sg, lib, relax);
  EXPECT_LE(circuit_delay(r.netlist), relax.target_delay + 1e-9);
  EXPECT_TRUE(check_equivalence(sg, r.netlist.to_network()).equivalent);
  // The relaxed mapping should not cost more area than the recovered
  // optimum mapping.
  DagMapOptions tight;
  tight.area_recovery = true;
  MapResult rt = dag_map(sg, lib, tight);
  EXPECT_LE(r.netlist.total_area(), rt.netlist.total_area() * 1.05 + 1e-9);
  // A target below the optimum clamps to the optimum.
  DagMapOptions impossible;
  impossible.area_recovery = true;
  impossible.target_delay = fastest.optimal_delay * 0.5;
  MapResult ri = dag_map(sg, lib, impossible);
  EXPECT_NEAR(circuit_delay(ri.netlist), fastest.optimal_delay, 1e-9);
}

TEST(DagMapper, RicherLibraryNeverSlower) {
  Network sg = full_adder_subject();
  GateLibrary l1 = make_44_library(1);
  GateLibrary l3 = make_44_library(3);
  MapResult r1 = dag_map(sg, l1);
  MapResult r3 = dag_map(sg, l3);
  // 44-3 is a functional superset with identical base delays, so the
  // optimal delay cannot increase.
  EXPECT_LE(r3.optimal_delay, r1.optimal_delay + 1e-9);
}

TEST(DagMapper, RequiresSubjectGraph) {
  GateLibrary lib = make_minimal_library();
  Network n("generic");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  n.add_output(n.add_xor(a, b), "o");
  EXPECT_THROW(dag_map(n, lib), ContractError);
}

TEST(DagMapper, RequiresCompleteLibrary) {
  GateLibrary lib = GateLibrary::from_genlib_text(
      "GATE inv 1 O=!a;\n PIN a INV 1 999 1.0 0 1.0 0\n");
  Network sg("s");
  NodeId a = sg.add_input("a");
  sg.add_output(sg.add_inv(a), "o");
  EXPECT_THROW(dag_map(sg, lib), ContractError);
}

TEST(DagMapper, SequentialCombinationalPortionMapped) {
  Network n("seq");
  NodeId x = n.add_input("x");
  NodeId s = n.add_latch_placeholder("state");
  NodeId nxt = n.add_xor(x, s);
  n.connect_latch(s, nxt);
  n.add_output(s, "q");
  Network sg = tech_decompose(n);
  GateLibrary lib = make_lib2_library();
  MapResult r = dag_map(sg, lib);
  EXPECT_EQ(r.netlist.latches().size(), 1u);
  EXPECT_TRUE(check_equivalence(sg, r.netlist.to_network()).equivalent);
  EXPECT_GT(r.optimal_delay, 0.0);  // latch D cone has gates
}

}  // namespace
}  // namespace dagmap
