// Partitioned mapping pipeline (core/partition.hpp): structural
// invariants of the fanout-free-window partitioning, and bit-identity of
// the partitioned schedule against the monolithic one — on crafted
// reconvergent circuits, the small suite, and the golden corpus, across
// window sizes and thread counts.  Carries the `tsan` CTest label so
// -DDAGMAP_SANITIZE=thread sweeps the wave-parallel labeler and the
// partition-parallel cover marking.
#include <gtest/gtest.h>

#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/dag_mapper.hpp"
#include "core/parallel.hpp"
#include "core/partition.hpp"
#include "decomp/tech_decomp.hpp"
#include "gen/circuits.hpp"
#include "io/blif.hpp"
#include "io/genlib.hpp"
#include "library/standard_libs.hpp"
#include "mapnet/cover.hpp"
#include "mapnet/write.hpp"
#include "supergate/supergate.hpp"

namespace dagmap {
namespace {

// ---- partition_subject invariants ---------------------------------------

TEST(Partition, ValidatesOnSmallSuite) {
  for (const BenchmarkCircuit& bc : make_small_suite()) {
    SCOPED_TRACE(bc.name);
    Network subject = tech_decompose(bc.network);
    for (std::uint32_t window : {1u, 4u, 64u, 1024u}) {
      SCOPED_TRACE(window);
      PartitionOptions po{.window_size = window};
      Partitioning parts = partition_subject(subject, po);
      parts.validate(subject, po);
      // Every internal node is in exactly one partition (validate checks
      // disjointness; the totals confirm the cover).
      std::size_t total = 0;
      for (PartId q = 0; q < parts.num_partitions(); ++q)
        total += parts.members(q).size();
      EXPECT_EQ(total, subject.num_internal());
    }
  }
}

TEST(Partition, ValidatesOnRandomSubjects) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    Network subject = make_random_subject_graph(3000, 16, 8, seed);
    for (std::uint32_t window : {1u, 4u, 64u, 1024u}) {
      PartitionOptions po{.window_size = window};
      Partitioning parts = partition_subject(subject, po);
      parts.validate(subject, po);
      EXPECT_LE(parts.max_partition_nodes(), window);
    }
  }
}

TEST(Partition, WindowOneIsOnePartitionPerNode) {
  Network subject = tech_decompose(make_ripple_carry_adder(6));
  PartitionOptions po{.window_size = 1};
  Partitioning parts = partition_subject(subject, po);
  parts.validate(subject, po);
  EXPECT_EQ(parts.num_partitions(), subject.num_internal());
  EXPECT_EQ(parts.boundary_edges(),
            [&] {
              std::size_t internal_edges = 0;
              for (NodeId n = 0; n < subject.size(); ++n) {
                if (subject.is_source(n)) continue;
                for (NodeId f : subject.fanins(n))
                  if (!subject.is_source(f)) ++internal_edges;
              }
              return internal_edges;
            }());
}

TEST(Partition, SequentialCircuitPartitions) {
  // Latches are sources: their D-edge reads must not constrain
  // membership, and the partitioning must still cover all gates.
  Network subject = tech_decompose(make_sequential_pipeline(3, 6, 11, 2));
  ASSERT_GT(subject.num_latches(), 0u);
  for (std::uint32_t window : {1u, 16u, 256u}) {
    PartitionOptions po{.window_size = window};
    Partitioning parts = partition_subject(subject, po);
    parts.validate(subject, po);
  }
}

// ---- bit-identity: partitioned vs monolithic ----------------------------

// Maps `subject` monolithically at one thread, then partitioned at the
// given window across thread counts, requiring byte-identical results.
void expect_partition_identity(const Network& subject, const GateLibrary& lib,
                               DagMapOptions base, std::uint32_t window) {
  DagMapOptions mono = base;
  mono.partition_mode = PartitionMode::Off;
  mono.num_threads = 1;
  MapResult ref = dag_map(subject, lib, mono);
  EXPECT_FALSE(ref.partitioned);
  std::string ref_blif = write_mapped_blif(ref.netlist);
  std::uint64_t ref_hash = ref.netlist.structural_hash();

  for (unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(testing::Message() << "window=" << window
                                    << " threads=" << threads);
    DagMapOptions part = base;
    part.partition_mode = PartitionMode::On;
    part.partition_window = window;
    part.num_threads = threads;
    MapResult r = dag_map(subject, lib, part);
    EXPECT_TRUE(r.partitioned);
    EXPECT_GE(r.num_partitions, 1u);
    ASSERT_EQ(r.label.size(), ref.label.size());
    for (std::size_t i = 0; i < ref.label.size(); ++i)
      ASSERT_EQ(r.label[i], ref.label[i]) << "label of node " << i;
    EXPECT_EQ(r.optimal_delay, ref.optimal_delay);
    EXPECT_EQ(r.netlist.structural_hash(), ref_hash);
    EXPECT_EQ(write_mapped_blif(r.netlist), ref_blif);
  }
}

TEST(PartitionIdentity, ReconvergentDiamonds) {
  // Chained diamonds: every apex reconverges two fanout branches, so
  // small windows force the reconvergence paths across partition
  // boundaries and exercise the arrival exchange hard.
  Network n("diamonds");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId cur = n.add_nand2(a, b);
  for (int i = 0; i < 12; ++i) {
    NodeId l = n.add_nand2(cur, a);
    NodeId r = n.add_inv(cur);
    NodeId rr = n.add_nand2(r, b);
    cur = n.add_nand2(l, rr);
  }
  n.add_output(cur, "y");
  ASSERT_TRUE(n.is_subject_graph());
  GateLibrary lib = make_lib2_library();
  for (std::uint32_t window : {1u, 2u, 5u, 64u})
    expect_partition_identity(n, lib, {}, window);
}

TEST(PartitionIdentity, SharedFanoutLadder) {
  // A wide multi-fanout hub: one node read by many partitions, so a
  // match leaf is exchanged across many boundary edges at once.
  Network n("ladder");
  NodeId x = n.add_input("x");
  NodeId y = n.add_input("y");
  NodeId hub = n.add_nand2(x, y);
  std::vector<NodeId> tips;
  for (int i = 0; i < 16; ++i) {
    NodeId t = n.add_nand2(hub, i % 2 ? x : y);
    tips.push_back(n.add_inv(t));
  }
  NodeId acc = tips[0];
  for (std::size_t i = 1; i < tips.size(); ++i)
    acc = n.add_nand2(acc, tips[i]);
  n.add_output(acc, "z");
  ASSERT_TRUE(n.is_subject_graph());
  GateLibrary lib = make_lib2_library();
  for (std::uint32_t window : {1u, 3u, 8u})
    expect_partition_identity(n, lib, {}, window);
}

TEST(PartitionIdentity, SmallSuiteAcrossWindows) {
  GateLibrary lib = make_lib2_library();
  for (const BenchmarkCircuit& bc : make_small_suite()) {
    SCOPED_TRACE(bc.name);
    Network subject = tech_decompose(bc.network);
    for (std::uint32_t window : {1u, 16u, 256u})
      expect_partition_identity(subject, lib, {}, window);
  }
}

TEST(PartitionIdentity, ComposesWithAreaRecoveryAndExtendedMatches) {
  GateLibrary lib = make_44_library(2);
  Network subject = tech_decompose(make_alu(6));
  DagMapOptions ar;
  ar.area_recovery = true;
  expect_partition_identity(subject, lib, ar, 16);
  DagMapOptions ext;
  ext.match_class = MatchClass::Extended;
  expect_partition_identity(subject, lib, ext, 16);
}

TEST(PartitionIdentity, SequentialCircuit) {
  GateLibrary lib = make_lib2_library();
  Network subject = tech_decompose(make_sequential_pipeline(2, 8, 5, 2));
  ASSERT_GT(subject.num_latches(), 0u);
  for (std::uint32_t window : {1u, 32u})
    expect_partition_identity(subject, lib, {}, window);
}

TEST(PartitionIdentity, RandomSubjectGraph) {
  GateLibrary lib = make_lib2_library();
  Network subject = make_random_subject_graph(2000, 24, 8, 0xBEEF);
  for (std::uint32_t window : {7u, 128u})
    expect_partition_identity(subject, lib, {}, window);
}

// ---- golden corpus ------------------------------------------------------

struct GoldenEntry {
  std::string name;
  std::string stem() const {
    std::size_t plus = name.find('+');
    return plus == std::string::npos ? name : name.substr(0, plus);
  }
  bool with_supergates() const { return name.find('+') != std::string::npos; }
};

std::string data_path(const std::string& rel) {
  return std::string(DAGMAP_TEST_DATA_DIR) + "/golden/" + rel;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(PartitionIdentity, GoldenCorpus) {
  // Every corpus pair (including the supergate-augmented entries) maps
  // bit-identically under the partitioned schedule at 1/2/8 threads.
  std::ifstream in(data_path("golden.expect"));
  ASSERT_TRUE(in.good()) << "missing tests/data/golden/golden.expect";
  std::vector<GoldenEntry> entries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    GoldenEntry e;
    ls >> e.name;
    entries.push_back(e);
  }
  ASSERT_GE(entries.size(), 4u);
  for (const GoldenEntry& e : entries) {
    SCOPED_TRACE(e.name);
    Network circuit = parse_blif(slurp(data_path(e.stem() + ".blif")));
    std::vector<GenlibGate> gates =
        parse_genlib(slurp(data_path(e.stem() + ".genlib")));
    GateLibrary lib =
        e.with_supergates()
            ? std::move(generate_supergates(gates, {}, e.name).library)
            : GateLibrary::from_genlib(gates, e.name);
    Network subject = tech_decompose(circuit);
    expect_partition_identity(subject, lib, {}, 16);
  }
}

// ---- mode selection -----------------------------------------------------

TEST(PartitionMode, AutoThresholdSelectsSchedule) {
  GateLibrary lib = make_lib2_library();
  Network subject = tech_decompose(make_ripple_carry_adder(8));
  DagMapOptions below;
  below.partition_auto_threshold = subject.num_internal() + 1;
  EXPECT_FALSE(dag_map(subject, lib, below).partitioned);
  DagMapOptions at;
  at.partition_auto_threshold = subject.num_internal();
  EXPECT_TRUE(dag_map(subject, lib, at).partitioned);
}

TEST(PartitionMode, MarkCoverPartitionedMatchesSequential) {
  // The partition-parallel marking alone (not just end-to-end dag_map)
  // reproduces the sequential fixpoint.
  GateLibrary lib = make_lib2_library();
  Network subject = tech_decompose(make_comparator(8));
  std::vector<std::optional<Match>> chosen(subject.size());
  {
    // Re-derive a fastest-match cover with the mapper's own tie-break so
    // the markers run on a realistic chosen set.
    Matcher matcher(lib, subject, {});
    std::vector<double> label(subject.size(), 0.0);
    for (NodeId n : subject.topo_order()) {
      if (subject.is_source(n)) continue;
      double best = std::numeric_limits<double>::infinity();
      double best_area = best;
      const Gate* best_gate = nullptr;
      matcher.for_each_match(n, MatchClass::Standard, [&](const MatchView& m) {
        double a = match_arrival(m, label);
        bool take = a < best - 1e-9;
        if (!take && a < best + 1e-9)
          take = m.gate->area < best_area ||
                 (m.gate->area == best_area && best_gate != nullptr &&
                  m.gate->name < best_gate->name);
        if (take) {
          best = a;
          best_area = m.gate->area;
          best_gate = m.gate;
          chosen[n] = Match(m);
        }
      });
      label[n] = best;
    }
  }
  std::vector<std::uint8_t> seq = mark_cover(subject, chosen);
  for (std::uint32_t window : {1u, 8u, 512u}) {
    Partitioning parts =
        partition_subject(subject, {.window_size = window});
    for (unsigned threads : {1u, 4u}) {
      ThreadPool pool(threads);
      EXPECT_EQ(mark_cover_partitioned(subject, chosen, parts, pool), seq)
          << "window=" << window << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace dagmap
