// Profiling must be purely observational: a profiled dag_map run emits
// the bit-identical mapped netlist of an unprofiled run, at every
// thread count.  Carries the `tsan` CTest label so the claim is also
// checked under ThreadSanitizer (-DDAGMAP_SANITIZE=thread).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/dag_mapper.hpp"
#include "decomp/tech_decomp.hpp"
#include "gen/circuits.hpp"
#include "library/standard_libs.hpp"
#include "mapnet/write.hpp"
#include "obs/obs.hpp"

namespace dagmap {
namespace {

std::string map_to_blif(const Network& subject, const GateLibrary& lib,
                        unsigned threads, bool profile) {
  DagMapOptions opt;
  opt.num_threads = threads;
  opt.area_recovery = true;  // covers the area-recovery instrumentation too
  opt.profile = profile;
  MapResult r = dag_map(subject, lib, opt);
  if (profile) {
    EXPECT_TRUE(r.profile.collected);
  } else {
    EXPECT_FALSE(r.profile.collected);
  }
  return write_mapped_blif(r.netlist);
}

TEST(ProfileDeterminism, ProfiledRunIsBitIdenticalAtAnyThreadCount) {
  Network subject = tech_decompose(make_array_multiplier(4));
  GateLibrary lib = make_lib2_library();

  const std::string reference =
      map_to_blif(subject, lib, /*threads=*/1, /*profile=*/false);
  ASSERT_FALSE(reference.empty());

  for (unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(map_to_blif(subject, lib, threads, /*profile=*/false),
              reference);
    EXPECT_EQ(map_to_blif(subject, lib, threads, /*profile=*/true),
              reference);
  }
}

TEST(ProfileDeterminism, DagMapProfileReportsPipelinePhases) {
  Network subject = tech_decompose(make_array_multiplier(4));
  GateLibrary lib = make_lib2_library();

  DagMapOptions opt;
  opt.num_threads = 8;
  opt.area_recovery = true;
  opt.profile = true;
  MapResult r = dag_map(subject, lib, opt);
  ASSERT_TRUE(r.profile.collected);

  // The mapper's own phases, in pipeline order.
  std::vector<std::string> names;
  for (const obs::PhaseSummary& p : r.profile.phases) names.push_back(p.name);
  auto has = [&](const char* n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("match.build"));
  EXPECT_TRUE(has("label"));
  EXPECT_TRUE(has("area_recovery"));
  EXPECT_TRUE(has("cover"));

  // Phase walls are sequential on the owner thread: their sum cannot
  // exceed the session total (and should account for most of it).
  double phase_sum = 0;
  for (const obs::PhaseSummary& p : r.profile.phases) phase_sum += p.seconds;
  EXPECT_GT(phase_sum, 0.0);
  EXPECT_LE(phase_sum, r.profile.total_seconds + 1e-6);

  // Labeling counters flowed through: every internal node was labeled
  // and at least one match was enumerated per node.
  EXPECT_EQ(r.profile.counters.at("label.nodes"), subject.num_internal());
  EXPECT_GE(r.profile.counters.at("match.enumerated"),
            subject.num_internal());

  // 8 labeling threads -> worker tracks appear in the trace (worker 0
  // is the calling thread; at least one pool worker must have events).
  bool has_worker_track = false;
  for (const auto& [tid, name] : r.profile.thread_names) {
    if (name.rfind("pool worker", 0) == 0) has_worker_track = true;
  }
  EXPECT_TRUE(has_worker_track);
}

TEST(ProfileDeterminism, ProfiledMapJoinsAnEnclosingSession) {
  Network subject = tech_decompose(make_array_multiplier(3));
  GateLibrary lib = make_lib2_library();

  obs::start();
  DagMapOptions opt;
  opt.profile = true;
  MapResult r = dag_map(subject, lib, opt);
  // dag_map did not stop the caller's session...
  EXPECT_TRUE(obs::enabled());
  obs::stop();
  // ...and its snapshot still carries the mapper phases.
  ASSERT_TRUE(r.profile.collected);
  EXPECT_FALSE(r.profile.phases.empty());
}

}  // namespace
}  // namespace dagmap
