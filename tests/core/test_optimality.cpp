// Independent optimality evidence for the DAG mapper: the paper claims
// the labeling computes the *minimum* achievable arrival over all covers
// (for the given subject graph and match class).  We sample many random
// covers — a random match choice at every node — build each cover, run
// real timing on it, and check none beats the mapper's optimum.
#include <gtest/gtest.h>

#include "core/dag_mapper.hpp"
#include "core/stats.hpp"
#include "treemap/tree_mapper.hpp"
#include "decomp/tech_decomp.hpp"
#include "gen/circuits.hpp"
#include "library/standard_libs.hpp"
#include "mapnet/cover.hpp"
#include "match/matcher.hpp"
#include "sim/simulator.hpp"
#include "timing/timing.hpp"

namespace dagmap {
namespace {

struct Rng {
  std::uint64_t s;
  explicit Rng(std::uint64_t seed) : s(seed * 2685821657736338717ull + 99) {}
  std::uint32_t below(std::uint32_t n) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return static_cast<std::uint32_t>(s % n);
  }
};

class Optimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Optimality, NoRandomCoverBeatsTheOptimum) {
  GateLibrary lib = make_lib2_library();
  Network sg = tech_decompose(make_random_dag(8, 60, 6, GetParam()));
  Matcher matcher(lib, sg);

  MapResult opt = dag_map(sg, lib);

  // Pre-collect the match lists once.
  std::vector<std::vector<Match>> all(sg.size());
  for (NodeId n = 0; n < sg.size(); ++n)
    if (!sg.is_source(n)) all[n] = matcher.matches_at(n, MatchClass::Standard);

  Rng rng(GetParam() * 7919 + 3);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::optional<Match>> chosen(sg.size());
    for (NodeId n = 0; n < sg.size(); ++n) {
      if (sg.is_source(n)) continue;
      ASSERT_FALSE(all[n].empty());
      chosen[n] =
          all[n][rng.below(static_cast<std::uint32_t>(all[n].size()))];
    }
    MappedNetlist cover = build_cover(sg, chosen);
    double delay = circuit_delay(cover);
    EXPECT_GE(delay + 1e-9, opt.optimal_delay) << "trial " << trial;
    // Sampled covers are still functionally correct.
    if (trial < 3) {
      EXPECT_TRUE(check_equivalence(sg, cover.to_network()).equivalent);
    }
  }
}

TEST_P(Optimality, GreedyFastestLocalChoiceIsTheLabel) {
  // The DP's label at each node equals the arrival of the cover that
  // greedily picks the per-node fastest match — a direct restatement of
  // the principle of optimality under load independence.
  GateLibrary lib = make_lib2_library();
  Network sg = tech_decompose(make_random_dag(8, 50, 5, GetParam() + 100));
  MapResult opt = dag_map(sg, lib);
  double mapped = circuit_delay(opt.netlist);
  EXPECT_NEAR(mapped, opt.optimal_delay, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Optimality,
                         ::testing::Values(2u, 4u, 9u, 16u, 25u));

TEST(Stats, DuplicationCountsMatchFigure2) {
  // The Figure 2 scenario: DAG covering covers `mid` twice.
  GateLibrary lib = GateLibrary::from_genlib_text(
      "GATE inv 1 O=!a;\n PIN a INV 1 999 1.0 0 1.0 0\n"
      "GATE nand2 2 O=!(a*b);\n PIN * INV 1 999 1.2 0 1.2 0\n"
      "GATE big3 3 O=a*b+!c;\n PIN * UNKNOWN 1 999 1.0 0 1.0 0\n");
  Network sg("fig2");
  NodeId a = sg.add_input("a");
  NodeId b = sg.add_input("b");
  NodeId c = sg.add_input("c");
  NodeId d = sg.add_input("d");
  NodeId mid = sg.add_nand2(a, b);
  sg.add_output(sg.add_nand2(mid, c), "o1");
  sg.add_output(sg.add_nand2(mid, d), "o2");
  MapResult dag = dag_map(sg, lib);
  EXPECT_EQ(dag.duplicated_nodes, 1u);   // mid, covered by both big3s
  EXPECT_EQ(dag.covered_distinct, 3u);   // mid, o1, o2
  EXPECT_EQ(dag.covered_instances, 4u);  // mid twice
  MapResult tree = tree_map(sg, lib);
  EXPECT_EQ(tree.duplicated_nodes, 0u);

  // mapping_stats sees the created multi-fanout points at a and b.
  MappingStats s = mapping_stats(sg, dag.netlist);
  EXPECT_EQ(s.subject_multi_fanout, 1u);  // mid
  EXPECT_EQ(s.gates, 2u);
  EXPECT_EQ(s.fanin_histogram[3], 2u);    // two big3 instances
  EXPECT_NEAR(s.average_gate_inputs(), 3.0, 1e-9);
}

TEST(Optimality, ExhaustiveTinyGraph) {
  // Fully enumerate all covers of a 4-internal-node subject graph and
  // confirm the mapper's optimum is the true minimum.
  GateLibrary lib = make_lib2_library();
  Network sg("tiny");
  NodeId a = sg.add_input("a");
  NodeId b = sg.add_input("b");
  NodeId c = sg.add_input("c");
  NodeId g1 = sg.add_nand2(a, b);
  NodeId g2 = sg.add_inv(g1);
  NodeId g3 = sg.add_nand2(g2, c);
  NodeId g4 = sg.add_inv(g3);
  sg.add_output(g4, "o");

  Matcher matcher(lib, sg);
  std::vector<std::vector<Match>> all(sg.size());
  std::vector<NodeId> internal;
  for (NodeId n = 0; n < sg.size(); ++n)
    if (!sg.is_source(n)) {
      all[n] = matcher.matches_at(n, MatchClass::Standard);
      internal.push_back(n);
    }

  double best = 1e300;
  std::vector<std::optional<Match>> chosen(sg.size());
  std::function<void(std::size_t)> rec = [&](std::size_t i) {
    if (i == internal.size()) {
      MappedNetlist cover = build_cover(sg, chosen);
      best = std::min(best, circuit_delay(cover));
      return;
    }
    for (const Match& m : all[internal[i]]) {
      chosen[internal[i]] = m;
      rec(i + 1);
    }
  };
  rec(0);

  MapResult opt = dag_map(sg, lib);
  EXPECT_NEAR(opt.optimal_delay, best, 1e-9);
}

}  // namespace
}  // namespace dagmap
