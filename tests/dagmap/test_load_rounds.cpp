// Iterated load-aware mapping rounds (dagmap/load_rounds.hpp).
//
// The contract under test:
//   * keep-best monotonicity — the measured loaded delay of the chosen
//     round is never worse than round 0 (the load-oblivious mapping),
//     on every golden-corpus circuit, for both backends;
//   * the chosen round is the minimum of the per-round measurements and
//     load_round_selected points at it;
//   * the flow is bit-identical at 1/2/8 threads (tsan tier);
//   * functional equivalence survives the re-priced re-mapping;
//   * estimate/reprice building blocks behave as documented.
#include "dagmap/load_rounds.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/dag_mapper.hpp"
#include "cutmap/cut_mapper.hpp"
#include "decomp/tech_decomp.hpp"
#include "io/blif.hpp"
#include "io/liberty.hpp"
#include "sim/simulator.hpp"

namespace dagmap {
namespace {

const char* kCorpus[] = {"full_adder", "mux4",    "decoder2",
                         "gray3",      "parity5", "majxor"};

std::string data_path(const std::string& rel) {
  return std::string(DAGMAP_TEST_DATA_DIR) + "/" + rel;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

GateLibrary golden_liberty_library() {
  LibertyLibrary lib = parse_liberty(slurp(data_path("golden.lib")));
  return GateLibrary::from_genlib(lib.gates, lib.name);
}

Network corpus_subject(const std::string& stem) {
  return tech_decompose(parse_blif(slurp(data_path("golden/" + stem + ".blif"))));
}

void check_round_bookkeeping(const MapResult& r, unsigned rounds) {
  ASSERT_EQ(r.load_round_delays.size(), rounds + 1u);
  EXPECT_NEAR(r.loaded_delay_round0, r.load_round_delays[0], 1e-12);
  double best = *std::min_element(r.load_round_delays.begin(),
                                  r.load_round_delays.end());
  EXPECT_NEAR(r.loaded_delay, best, 1e-12);
  ASSERT_LT(r.load_round_selected, r.load_round_delays.size());
  EXPECT_NEAR(r.load_round_delays[r.load_round_selected], r.loaded_delay,
              1e-12);
  // Keep-best: never worse than the load-oblivious round 0.
  EXPECT_LE(r.loaded_delay, r.loaded_delay_round0 + 1e-9);
}

TEST(LoadRounds, NeverWorseThanRoundZeroOnTheGoldenCorpus) {
  GateLibrary lib = golden_liberty_library();
  for (const char* stem : kCorpus) {
    SCOPED_TRACE(stem);
    Network subject = corpus_subject(stem);
    DagMapOptions opt;
    opt.load_rounds = 3;
    MapResult r = dag_map(subject, lib, opt);
    check_round_bookkeeping(r, 3);
    // The measured delay really is the netlist's delay under the model.
    EXPECT_NEAR(r.loaded_delay,
                circuit_delay_loaded(r.netlist, opt.load_model), 1e-9);
  }
}

TEST(LoadRounds, CutBackendHonorsTheSameContract) {
  GateLibrary lib = golden_liberty_library();
  for (const char* stem : kCorpus) {
    SCOPED_TRACE(stem);
    Network subject = corpus_subject(stem);
    CutMapOptions opt;
    opt.load_rounds = 2;
    MapResult r = cut_map(subject, lib, opt);
    check_round_bookkeeping(r, 2);
  }
}

TEST(LoadRounds, ReMappedNetlistStaysEquivalent) {
  GateLibrary lib = golden_liberty_library();
  for (const char* stem : {"full_adder", "majxor"}) {
    SCOPED_TRACE(stem);
    Network circuit = parse_blif(slurp(data_path("golden/" + std::string(stem) +
                                                 ".blif")));
    Network subject = tech_decompose(circuit);
    DagMapOptions opt;
    opt.load_rounds = 2;
    MapResult r = dag_map(subject, lib, opt);
    EXPECT_TRUE(check_equivalence(circuit, r.netlist.to_network()).equivalent);
  }
}

TEST(LoadRounds, ImprovesTheLoadObliviousMappingSomewhere) {
  // Regression pin: with the golden Liberty library (real nonzero
  // slopes) the re-priced rounds actually find a better netlist on at
  // least one corpus circuit — the flow is not a no-op.
  GateLibrary lib = golden_liberty_library();
  bool improved = false;
  for (const char* stem : kCorpus) {
    DagMapOptions opt;
    opt.load_rounds = 3;
    MapResult r = dag_map(corpus_subject(stem), lib, opt);
    if (r.loaded_delay < r.loaded_delay_round0 - 1e-9) improved = true;
  }
  EXPECT_TRUE(improved);
}

TEST(LoadRounds, BitIdenticalAcrossThreadCounts) {
  GateLibrary lib = golden_liberty_library();
  for (const char* stem : kCorpus) {
    SCOPED_TRACE(stem);
    Network subject = corpus_subject(stem);
    std::vector<MapResult> runs;
    for (unsigned threads : {1u, 2u, 8u}) {
      DagMapOptions opt;
      opt.load_rounds = 2;
      opt.num_threads = threads;
      runs.push_back(dag_map(subject, lib, opt));
    }
    for (std::size_t i = 1; i < runs.size(); ++i) {
      EXPECT_EQ(runs[i].netlist.structural_hash(),
                runs[0].netlist.structural_hash());
      EXPECT_EQ(runs[i].loaded_delay, runs[0].loaded_delay);
      EXPECT_EQ(runs[i].load_round_delays, runs[0].load_round_delays);
      EXPECT_EQ(runs[i].load_round_selected, runs[0].load_round_selected);
    }
  }
}

TEST(LoadRounds, ZeroSlopeLibraryIsAFixedPoint) {
  // With load-independent pin delays (all slopes zero) re-pricing
  // changes nothing: every round measures the same delay and round 0 is
  // selected.
  GateLibrary lib = GateLibrary::from_genlib_text(
      "GATE inv 1 O=!a;\n PIN * INV 1 999 1 0 1 0\n"
      "GATE nand2 2 O=!(a*b);\n PIN * INV 1 999 1 0 1 0\n",
      "zero_slope");
  Network subject = corpus_subject("full_adder");
  DagMapOptions opt;
  opt.load_rounds = 2;
  MapResult r = dag_map(subject, lib, opt);
  check_round_bookkeeping(r, 2);
  EXPECT_EQ(r.load_round_selected, 0u);
  for (double d : r.load_round_delays)
    EXPECT_NEAR(d, r.load_round_delays[0], 1e-12);
}

TEST(LoadRounds, RepriceFoldsLoadIntoBlockDelays) {
  GateLibrary lib = golden_liberty_library();
  std::vector<double> loads(lib.size(), 2.0);
  GateLibrary priced = reprice_library(lib, loads, "priced");
  ASSERT_EQ(priced.size(), lib.size());
  for (std::size_t i = 0; i < lib.size(); ++i) {
    const Gate& a = lib.gates()[i];
    const Gate& b = priced.gates()[i];
    ASSERT_EQ(a.pins.size(), b.pins.size());
    EXPECT_EQ(a.name, b.name);
    for (std::size_t p = 0; p < a.pins.size(); ++p) {
      EXPECT_NEAR(b.pins[p].rise_block,
                  a.pins[p].rise_block + 2.0 * a.pins[p].rise_fanout, 1e-12);
      EXPECT_NEAR(b.pins[p].fall_block,
                  a.pins[p].fall_block + 2.0 * a.pins[p].fall_fanout, 1e-12);
      // Slopes and loads are preserved, only blocks shift.
      EXPECT_EQ(b.pins[p].rise_fanout, a.pins[p].rise_fanout);
      EXPECT_EQ(b.pins[p].input_load, a.pins[p].input_load);
    }
  }
}

TEST(LoadRounds, EstimatesCriticalInstanceLoads) {
  // One inverter driving a heavy net, one driving a light net: the
  // critical one (heavy, on the longer path) dominates the estimate.
  GateLibrary lib = golden_liberty_library();
  const Gate* inv = nullptr;
  for (const Gate& g : lib.gates())
    if (g.name == "INVX1") inv = &g;
  ASSERT_NE(inv, nullptr);

  MappedNetlist net("t");
  InstId a = net.add_input("a");
  InstId heavy = net.add_gate(inv, {a});
  InstId stage2 = net.add_gate(inv, {heavy});  // makes `heavy` critical
  net.add_output(stage2, "o");
  InstId light = net.add_gate(inv, {a});
  net.add_output(light, "p");

  LoadModel model;
  LoadTimingReport timing = analyze_timing_loaded(net, model);
  std::vector<double> est = estimate_gate_loads(net, lib, timing);
  ASSERT_EQ(est.size(), lib.size());
  std::size_t inv_idx = static_cast<std::size_t>(inv - lib.gates().data());
  // The critical instances are `heavy` and `stage2`; their average
  // measured load is what the estimate must report.
  double expected =
      (timing.net_load[heavy] + timing.net_load[stage2]) / 2.0;
  EXPECT_NEAR(est[inv_idx], expected, 1e-12);
}

}  // namespace
}  // namespace dagmap
