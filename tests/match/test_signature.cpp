// Signature-index soundness: a pruned (root, pattern) pair must be one
// the backtracking walk would also reject.  Checked both directly (every
// pattern signature vs every subject node signature, cross-checked
// against the unpruned walk) and end-to-end (indexed and unindexed
// matchers enumerate identical match sets).
#include "match/signature.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "decomp/tech_decomp.hpp"
#include "gen/circuits.hpp"
#include "library/standard_libs.hpp"
#include "match/matcher.hpp"

namespace dagmap {
namespace {

// Canonical form of a match for set comparison: gate name + leaf binding
// + sorted covered nodes.  Covered nodes discriminate which *pattern*
// produced a deduplicated match, so an unsoundly pruned pattern cannot
// hide behind an equal-binding match of a sibling pattern.
using MatchKey = std::tuple<std::string, std::vector<NodeId>, std::vector<NodeId>>;

std::set<MatchKey> match_set(const Matcher& m, NodeId root, MatchClass mc) {
  std::set<MatchKey> out;
  m.for_each_match(root, mc, [&](const MatchView& v) {
    std::vector<NodeId> covered(v.covered.begin(), v.covered.end());
    std::sort(covered.begin(), covered.end());
    out.insert({v.gate->name,
                {v.pin_binding.begin(), v.pin_binding.end()},
                std::move(covered)});
  });
  return out;
}

TEST(Signature, Nand2PatternSignature) {
  GateLibrary lib = make_minimal_library();
  const Gate* nand2 = lib.nand2();
  ASSERT_NE(nand2, nullptr);
  ASSERT_EQ(nand2->patterns.size(), 1u);
  PatternSignature s = compute_pattern_signature(nand2->patterns[0]);
  EXPECT_EQ(s.depth, 1);
  EXPECT_EQ(s.total, 3);  // NAND + 2 leaves
  EXPECT_EQ(s.inv_count, 0);
  EXPECT_EQ(s.nand_count, 1);
  // Exactly one required path: the length-1 sequence "Nand2" (bit 3).
  EXPECT_EQ(s.paths, 1ull << 3);
}

TEST(Signature, SubjectChainSignatures) {
  // x -> inv -> nand(inv, y): depth/count/path bookkeeping on a chain.
  Network n("chain");
  NodeId x = n.add_input("x");
  NodeId y = n.add_input("y");
  NodeId i = n.add_inv(x);
  NodeId g = n.add_nand2(i, y);
  n.add_output(g, "o");
  auto sig = compute_subject_signatures(n);

  EXPECT_EQ(sig[x].depth, 0);
  EXPECT_EQ(sig[x].size_ub, 1);
  EXPECT_EQ(sig[i].depth, 1);
  EXPECT_EQ(sig[i].inv_ub, 1);
  EXPECT_EQ(sig[i].nand_ub, 0);
  EXPECT_EQ(sig[g].depth, 2);
  EXPECT_EQ(sig[g].inv_ub, 1);
  EXPECT_EQ(sig[g].nand_ub, 1);
  EXPECT_EQ(sig[g].size_ub, 4);  // g, i, x, y
  // g's paths: "N" (idx 3) and "N,I" (idx 4 + 0b10 = 6).
  EXPECT_EQ(sig[g].paths, (1ull << 3) | (1ull << 6));
  // Near counts at g: inv within 2 = 1, nand within 1 = 1.
  EXPECT_EQ(sig[g].near[0][0], 0);  // inv at distance <= 1... distance 1 = i
  EXPECT_EQ(sig[g].near[1][0], 1);  // nand within 1 (g itself)
}

TEST(Signature, AdmitsIsNecessaryOnMultiplier) {
  // Exhaustive (root, pattern) cross-check on an array multiplier: if the
  // signature rejects the pair, the unpruned backtracking walk must find
  // no match of that pattern's gate shape rooted there.
  Network subject = tech_decompose(make_array_multiplier(4));
  GateLibrary lib = make_lib2_library();
  Matcher unpruned(lib, subject, {.use_signature_index = false});
  auto sigs = compute_subject_signatures(subject);

  for (MatchClass mc :
       {MatchClass::Exact, MatchClass::Standard, MatchClass::Extended}) {
    for (NodeId n = 0; n < subject.size(); ++n) {
      if (subject.is_source(n)) continue;
      // Gate name -> any match present, from the full enumeration.
      std::set<MatchKey> all = match_set(unpruned, n, mc);
      std::set<std::string> matched_gates;
      for (const auto& [gate, pins, covered] : all) matched_gates.insert(gate);

      for (const Gate& g : lib.gates()) {
        bool any_pattern_admitted = false;
        for (const PatternGraph& p : g.patterns) {
          const PatternNode& root = p.nodes[p.root];
          bool kind_ok =
              (root.kind == PatternNode::Kind::Inv &&
               subject.kind(n) == NodeKind::Inv) ||
              (root.kind == PatternNode::Kind::Nand2 &&
               subject.kind(n) == NodeKind::Nand2);
          if (kind_ok &&
              signature_admits(compute_pattern_signature(p), sigs[n], mc))
            any_pattern_admitted = true;
        }
        // Soundness: every pattern pruned => the gate cannot match at n.
        if (!any_pattern_admitted) {
          EXPECT_EQ(matched_gates.count(g.name), 0u)
              << "signature pruned all patterns of " << g.name << " at node "
              << n << " (" << to_string(mc) << ") but a match exists";
        }
      }
    }
  }
}

TEST(Signature, IndexedMatcherEnumeratesIdenticalSets) {
  // End-to-end: with and without the index, the match sets agree at every
  // root, for every match class, on lib2 and on a rich 44-family library.
  Network subject = tech_decompose(make_array_multiplier(4));
  for (int lib_id = 0; lib_id < 2; ++lib_id) {
    GateLibrary lib = lib_id == 0 ? make_lib2_library() : make_44_library(2);
    Matcher with(lib, subject, {.use_signature_index = true});
    Matcher without(lib, subject, {.use_signature_index = false});
    for (MatchClass mc :
         {MatchClass::Exact, MatchClass::Standard, MatchClass::Extended}) {
      for (NodeId n = 0; n < subject.size(); ++n) {
        if (subject.is_source(n)) continue;
        EXPECT_EQ(match_set(with, n, mc), match_set(without, n, mc))
            << "node " << n << " class " << to_string(mc) << " lib "
            << lib.name();
      }
    }
    // The index must actually fire on the rich library.
    if (lib_id == 1) {
      EXPECT_GT(with.pruned(), 0u);
    }
    EXPECT_EQ(without.pruned(), 0u);
  }
}

TEST(Signature, PrunesDeepPatternAtShallowRoot) {
  // A shallow subject node must reject any deep pattern in O(1).
  GateLibrary lib = make_lib2_library();
  Network n("shallow");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId g = n.add_nand2(a, b);
  n.add_output(g, "o");
  auto sigs = compute_subject_signatures(n);
  for (const Gate& gate : lib.gates()) {
    for (const PatternGraph& p : gate.patterns) {
      PatternSignature ps = compute_pattern_signature(p);
      if (ps.depth <= 1) continue;
      EXPECT_FALSE(signature_admits(ps, sigs[g], MatchClass::Standard))
          << gate.name << " depth " << ps.depth;
    }
  }
}

}  // namespace
}  // namespace dagmap
