// Tests for structural matching, including the paper's Figure 1
// (standard vs extended matches) and Rudell's exact-match condition.
#include "match/matcher.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "decomp/tech_decomp.hpp"
#include "library/standard_libs.hpp"
#include "netlist/assert.hpp"

namespace dagmap {
namespace {

bool has_gate(const std::vector<Match>& ms, const std::string& name) {
  return std::any_of(ms.begin(), ms.end(), [&](const Match& m) {
    return m.gate->name == name;
  });
}

TEST(Matcher, InvAndNandAlwaysMatch) {
  GateLibrary lib = make_minimal_library();
  Network n("t");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId g = n.add_nand2(a, b);
  NodeId h = n.add_inv(g);
  n.add_output(h, "o");
  Matcher m(lib, n);
  auto at_nand = m.matches_at(g, MatchClass::Standard);
  ASSERT_EQ(at_nand.size(), 1u);
  EXPECT_EQ(at_nand[0].gate->name, "nand2");
  EXPECT_EQ(at_nand[0].pin_binding.size(), 2u);
  auto at_inv = m.matches_at(h, MatchClass::Standard);
  ASSERT_EQ(at_inv.size(), 1u);
  EXPECT_EQ(at_inv[0].gate->name, "inv");
  EXPECT_EQ(at_inv[0].pin_binding[0], g);
}

TEST(Matcher, And2MatchesInvOfNand) {
  GateLibrary lib = make_lib2_library();
  Network n("t");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId g = n.add_nand2(a, b);
  NodeId h = n.add_inv(g);
  n.add_output(h, "o");
  Matcher m(lib, n);
  auto ms = m.matches_at(h, MatchClass::Standard);
  EXPECT_TRUE(has_gate(ms, "and2"));
  EXPECT_TRUE(has_gate(ms, "inv"));
}

TEST(Matcher, BothNandOrdersEnumerated) {
  // Asymmetric pattern INV(NAND(INV(p0), p1)) — the oai-ish shape — must
  // be tried in both orders when the subject children differ.
  GateLibrary lib = GateLibrary::from_genlib_text(
      "GATE inv 1 O=!a;\n PIN a INV 1 999 1 0 1 0\n"
      "GATE nand2 2 O=!(a*b);\n PIN * INV 1 999 1 0 1 0\n"
      "GATE andnot 2 O=!a*b;\n"
      " PIN a INV 1 999 3.0 0 3.0 0\n PIN b NONINV 1 999 1.0 0 1.0 0\n");
  // andnot = !a*b = INV(NAND(INV(a), b)).
  Network n("t");
  NodeId x = n.add_input("x");
  NodeId y = n.add_input("y");
  NodeId ix = n.add_inv(x);
  NodeId g = n.add_nand2(ix, y);
  NodeId h = n.add_inv(g);
  n.add_output(h, "o");
  Matcher m(lib, n);
  auto ms = m.matches_at(h, MatchClass::Standard);
  // Exactly one binding exists: pin a -> x, pin b -> y.
  ASSERT_TRUE(has_gate(ms, "andnot"));
  for (const Match& mm : ms) {
    if (mm.gate->name != "andnot") continue;
    EXPECT_EQ(mm.pin_binding[0], x);
    EXPECT_EQ(mm.pin_binding[1], y);
  }
}

TEST(Matcher, SymmetricSubjectYieldsBothPinAssignments) {
  // Subject NAND(INV(x), INV(y)) matched by nor2 = INV-rooted? nor2 =
  // !(a+b) = AND(!a,!b) = INV(NAND... actually !(a+b) lowers to
  // INV(NAND(INV a, INV b))?  No: !(a+b) = !a * !b = INV(NAND(INV(a),
  // INV(b)))... the lowering gives NOT(OR) collapsing to
  // INV(NAND(INV,INV)).  Check or2 instead at the NAND node: a+b =
  // NAND(INV a, INV b).
  GateLibrary lib = make_lib2_library();
  Network n("t");
  NodeId x = n.add_input("x");
  NodeId y = n.add_input("y");
  NodeId ix = n.add_inv(x);
  NodeId iy = n.add_inv(y);
  NodeId g = n.add_nand2(ix, iy);
  n.add_output(g, "o");
  Matcher m(lib, n);
  auto ms = m.matches_at(g, MatchClass::Standard);
  EXPECT_TRUE(has_gate(ms, "or2"));
  // or2 has symmetric pins; symmetry pruning keeps exactly one binding.
  int or2_count = 0;
  for (const Match& mm : ms)
    if (mm.gate->name == "or2") ++or2_count;
  EXPECT_EQ(or2_count, 1);
}

// ---- Figure 1: standard vs extended ------------------------------------
//
// Subject graph: n = NAND(a, b); two inverters m1 = INV(n), m2 = INV(n);
// top = NAND(m1, m2).  Pattern: NAND(INV(p0), INV(p1)) — or2's pattern.
// A standard match would need distinct subject nodes for the two pattern
// INVs' *fanins*, but both m1 and m2 read the same n, so pattern leaves
// p0 and p1 both bind n: extended match only.
TEST(Matcher, Figure1ExtendedMatchOnly) {
  GateLibrary lib = make_lib2_library();
  Network n("fig1");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId nn = n.add_nand2(a, b);
  NodeId m1 = n.add_inv(nn);
  NodeId m2 = n.add_inv(nn);
  NodeId top = n.add_nand2(m1, m2);
  n.add_output(top, "o");

  Matcher m(lib, n);
  auto std_ms = m.matches_at(top, MatchClass::Standard);
  auto ext_ms = m.matches_at(top, MatchClass::Extended);

  // or2 requires leaves p0 != p1 under Standard (one-to-one), both = nn
  // here, so only Extended finds it.
  EXPECT_FALSE(has_gate(std_ms, "or2"));
  EXPECT_TRUE(has_gate(ext_ms, "or2"));
  // Extended subsumes standard: every standard match appears.
  EXPECT_GE(ext_ms.size(), std_ms.size());
  for (const Match& mm : ext_ms) {
    if (mm.gate->name != "or2") continue;
    EXPECT_EQ(mm.pin_binding[0], nn);
    EXPECT_EQ(mm.pin_binding[1], nn);
  }
}

TEST(Matcher, StandardAllowsExternalFanout) {
  // aoi-style match where a covered internal node also drives logic
  // outside the match: legal under Standard, illegal under Exact.
  GateLibrary lib = make_lib2_library();
  Network n("fan");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId g = n.add_nand2(a, b);   // covered internal node
  NodeId h = n.add_inv(g);        // and2 root covering g
  NodeId other = n.add_inv(g);    // external fanout of g
  n.add_output(h, "o1");
  n.add_output(other, "o2");
  Matcher m(lib, n);
  auto std_ms = m.matches_at(h, MatchClass::Standard);
  auto exact_ms = m.matches_at(h, MatchClass::Exact);
  EXPECT_TRUE(has_gate(std_ms, "and2"));
  EXPECT_FALSE(has_gate(exact_ms, "and2"));
  // The inverter itself is always an exact match at h.
  EXPECT_TRUE(has_gate(exact_ms, "inv"));
}

TEST(Matcher, ExactMatchWhenFanoutInside) {
  GateLibrary lib = make_lib2_library();
  Network n("in");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId g = n.add_nand2(a, b);
  NodeId h = n.add_inv(g);  // g has single fanout -> exact and2 exists
  n.add_output(h, "o");
  Matcher m(lib, n);
  auto exact_ms = m.matches_at(h, MatchClass::Exact);
  EXPECT_TRUE(has_gate(exact_ms, "and2"));
}

TEST(Matcher, XorPatternMatchesSharedStructure) {
  GateLibrary lib = make_lib2_library();
  // Build the canonical XOR NAND structure: t = NAND(a,b);
  // u = NAND(a,t); v = NAND(b,t); x = NAND(u,v).
  Network n("xor");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId t = n.add_nand2(a, b);
  NodeId u = n.add_nand2(a, t);
  NodeId v = n.add_nand2(b, t);
  NodeId x = n.add_nand2(u, v);
  n.add_output(x, "o");
  Matcher m(lib, n);
  auto ms = m.matches_at(x, MatchClass::Standard);
  // The balanced ISOP xor pattern is NAND(NAND(a,INV b),NAND(INV a,b)):
  // that exact shape is not present here, so xor2 may or may not match —
  // but nand2 must, and all matches must be structurally valid.
  EXPECT_TRUE(has_gate(ms, "nand2"));
  for (const Match& mm : ms) {
    EXPECT_EQ(mm.pin_binding.size(), mm.gate->num_inputs());
    EXPECT_FALSE(mm.covered.empty());
    EXPECT_EQ(mm.covered.size() + 0u, mm.pattern->num_internal());
  }
}

TEST(Matcher, MatchArrivalUsesPinDelays) {
  GateLibrary lib = GateLibrary::from_genlib_text(
      "GATE inv 1 O=!a;\n PIN a INV 1 999 1 0 1 0\n"
      "GATE nand2 2 O=!(a*b);\n"
      " PIN a INV 1 999 2.0 0 2.0 0\n PIN b INV 1 999 1.0 0 1.0 0\n");
  Network n("t");
  NodeId x = n.add_input("x");
  NodeId y = n.add_input("y");
  NodeId g = n.add_nand2(x, y);
  n.add_output(g, "o");
  Matcher m(lib, n);
  auto ms = m.matches_at(g, MatchClass::Standard);
  // Both pin assignments must be enumerated (pins have different delays).
  ASSERT_EQ(ms.size(), 2u);
  std::vector<double> arr(n.size(), 0.0);
  arr[x] = 5.0;
  arr[y] = 0.0;
  double best = 1e9;
  for (const Match& mm : ms) best = std::min(best, match_arrival(mm, arr));
  // Best: slow input x on fast pin b: max(5+1, 0+2) = 6.
  EXPECT_DOUBLE_EQ(best, 6.0);
}

TEST(Matcher, RichLibraryFindsWideMatches) {
  GateLibrary lib = make_44_library(3);
  // Subject: 16-input AND-OR-INVERT !(abcd+efgh+ijkl+mnop) built from
  // 2-input nodes and run through the shared technology decomposition,
  // so its NAND2/INV shape coincides with the pattern generator's.
  Network src("wide");
  std::vector<NodeId> ins;
  for (int i = 0; i < 16; ++i)
    ins.push_back(src.add_input("i" + std::to_string(i)));
  auto and4 = [&](int base) {
    return src.add_and(src.add_and(ins[base], ins[base + 1]),
                       src.add_and(ins[base + 2], ins[base + 3]));
  };
  NodeId p1 = and4(0), p2 = and4(4), p3 = and4(8), p4 = and4(12);
  NodeId or_top = src.add_or(src.add_or(p1, p2), src.add_or(p3, p4));
  src.add_output(src.add_inv(or_top), "o");
  Network sg = tech_decompose(src);

  Matcher m(lib, sg);
  NodeId root = sg.outputs()[0].node;
  auto ms = m.matches_at(root, MatchClass::Standard);
  // Some 16-input gate must match at the root.
  bool wide = std::any_of(ms.begin(), ms.end(), [](const Match& mm) {
    return mm.gate->num_inputs() == 16;
  });
  EXPECT_TRUE(wide);
  EXPECT_EQ(m.truncations(), 0u);
}

TEST(Matcher, MatchesAtRejectsSources) {
  GateLibrary lib = make_minimal_library();
  Network n("t");
  NodeId a = n.add_input("a");
  NodeId g = n.add_inv(a);
  n.add_output(g, "o");
  Matcher m(lib, n);
  EXPECT_THROW(m.matches_at(a, MatchClass::Standard), ContractError);
}

TEST(Matcher, DedupesSymmetricDuplicates) {
  GateLibrary lib = make_lib2_library();
  Network n("t");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId g = n.add_nand2(a, b);
  n.add_output(g, "o");
  Matcher m(lib, n);
  auto ms = m.matches_at(g, MatchClass::Standard);
  // nand2 with symmetric pins: one match only after dedup/symmetry.
  int nand_count = 0;
  for (const Match& mm : ms)
    if (mm.gate->name == "nand2") ++nand_count;
  EXPECT_EQ(nand_count, 1);
}

}  // namespace
}  // namespace dagmap
