// Fuzz coverage for the PR-1 signature index: the index is a pure
// *screen* — it may only reject (root, pattern) pairs that cannot match.
// For 200 seeded (circuit, library) pairs we enumerate every match at
// every internal node with screening enabled and disabled and require
// identical match sets, for both match classes.  (CTest label `fuzz`.)
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "decomp/tech_decomp.hpp"
#include "gen/circuits.hpp"
#include "gen/libraries.hpp"
#include "library/standard_libs.hpp"
#include "match/matcher.hpp"

namespace dagmap {
namespace {

std::set<std::string> match_keys(const Matcher& matcher, NodeId root,
                                 MatchClass mc) {
  std::set<std::string> keys;
  matcher.for_each_match(root, mc, [&](const MatchView& m) {
    std::string k = m.gate->name;
    for (NodeId leaf : m.pin_binding) k += "|" + std::to_string(leaf);
    keys.insert(k);
  });
  return keys;
}

TEST(SignatureFuzz, IndexNeverChangesTheMatchSet) {
  for (std::uint64_t pair = 0; pair < 200; ++pair) {
    unsigned num_inputs = 4 + static_cast<unsigned>(pair % 4);
    unsigned num_nodes = 12 + static_cast<unsigned>(pair % 20);
    Network sg = tech_decompose(
        make_random_dag(num_inputs, num_nodes, 2, pair * 131 + 7));
    // Mix of random technologies and the richer built-in one.
    GateLibrary lib = pair % 5 == 4
                          ? make_lib2_library()
                          : make_random_library(pair * 17 + 3,
                                                5 + pair % 7, 4);

    Matcher indexed(lib, sg, {.use_signature_index = true});
    Matcher unscreened(lib, sg, {.use_signature_index = false});
    for (NodeId n = 0; n < sg.size(); ++n) {
      if (sg.is_source(n)) continue;
      for (MatchClass mc : {MatchClass::Standard, MatchClass::Extended}) {
        auto with = match_keys(indexed, n, mc);
        auto without = match_keys(unscreened, n, mc);
        ASSERT_EQ(with, without) << "pair " << pair << " node " << n
                                 << " class " << to_string(mc);
      }
    }
    // The screen must have actually pruned something somewhere to be
    // worth its name (sanity on the statistic, not a correctness claim).
    EXPECT_EQ(unscreened.pruned(), 0u);
  }
}

}  // namespace
}  // namespace dagmap
