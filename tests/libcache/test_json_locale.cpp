// Locale independence of the JSONL protocol layer (libcache/json.hpp)
// and the CLI's numeric flag parsing — the comma-decimal regressions
// fixed alongside the load-aware-rounds work.
//
// json.cpp used std::strtod for numbers and snprintf %g for printing;
// both honor LC_NUMERIC, so a de_DE-style process locale silently
// truncated "1.5" to 1.0 on parse and emitted "1,5" (invalid JSON) on
// print.  dagmap_cli's --delay-factor used std::stod, the same bug.
// Everything now routes through parse_double_strict / std::to_chars,
// which never consult the locale.
#include <gtest/gtest.h>

#include <clocale>
#include <fstream>
#include <locale>
#include <sstream>
#include <string>
#include <vector>

#include "io/number.hpp"
#include "libcache/json.hpp"
#include "libcache/serve.hpp"

namespace dagmap {
namespace {

using libcache::JsonValue;
using libcache::json_number;
using libcache::json_quote;
using libcache::parse_json;

// A numpunct facet with ',' as the decimal point — what a de_DE-style
// locale installs.  Injected directly so the test does not depend on
// which locales the host has generated.
struct CommaDecimal : std::numpunct<char> {
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

class CommaLocaleGuard {
 public:
  CommaLocaleGuard()
      : cxx_previous_(std::locale::global(
            std::locale(std::locale::classic(), new CommaDecimal))) {
    for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "de_DE"}) {
      if (std::setlocale(LC_NUMERIC, name) != nullptr) {
        c_changed_ = true;
        break;
      }
    }
  }
  ~CommaLocaleGuard() {
    std::locale::global(cxx_previous_);
    if (c_changed_) std::setlocale(LC_NUMERIC, "C");
  }

 private:
  std::locale cxx_previous_;
  bool c_changed_ = false;
};

TEST(JsonLocale, ParsesDotDecimalsUnderCommaLocale) {
  CommaLocaleGuard guard;
  JsonValue v = parse_json(
      "{\"delay\": 12.75, \"factor\": 1.5, \"tiny\": 2.5e-3}");
  EXPECT_DOUBLE_EQ(v.get_number("delay"), 12.75);
  EXPECT_DOUBLE_EQ(v.get_number("factor"), 1.5);
  EXPECT_DOUBLE_EQ(v.get_number("tiny"), 0.0025);
}

TEST(JsonLocale, PrintsDotDecimalsUnderCommaLocale) {
  CommaLocaleGuard guard;
  std::string s = json_number(1.5);
  EXPECT_NE(s.find('.'), std::string::npos) << s;
  EXPECT_EQ(s.find(','), std::string::npos) << s;
}

TEST(JsonLocale, NumbersRoundTripExactlyUnderCommaLocale) {
  CommaLocaleGuard guard;
  for (double v : {0.0, 1.0, -1.5, 12.745, 0.2, 1e-9, 6.02e23, -3.25e-7,
                   123456.789}) {
    std::string printed = json_number(v);
    JsonValue back = parse_json("{\"v\": " + printed + "}");
    EXPECT_EQ(back.get_number("v"), v) << printed;
  }
}

TEST(JsonLocale, CliDoubleFlagParserIgnoresTheLocale) {
  // The path dagmap_cli's --delay-factor / numeric flags run through.
  CommaLocaleGuard guard;
  EXPECT_EQ(parse_double_strict("1.5").value(), 1.5);
  EXPECT_EQ(parse_double_strict("2.25e1").value(), 22.5);
  // The comma spelling is rejected outright, never half-parsed.
  EXPECT_FALSE(parse_double_strict("1,5").has_value());
}

// Fractional everything: areas and blocks with '.5' so truncation bugs
// change observable results.
std::string fractional_genlib() {
  return "GATE inv 1.5 O=!a;\n PIN * INV 1 999 1.5 0 1.5 0\n"
         "GATE nand2 2.5 O=!(a*b);\n PIN * INV 1 999 2.5 0 2.5 0\n";
}

TEST(JsonLocale, ServeRoundTripsUnderCommaLocale) {
  // End-to-end: a request whose options carry fractional numbers, and a
  // response whose delay is fractional, must survive a comma-decimal
  // process locale bit-exactly.
  std::string lib_path = ::testing::TempDir() + "json_locale.genlib";
  {
    std::ofstream out(lib_path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good());
    out << fractional_genlib();
  }
  const char* circ =
      ".model c\n.inputs a b c\n.outputs o\n"
      ".names a b x\n11 1\n.names x c o\n10 1\n.end\n";
  std::string input =
      "{\"circuit\": " + std::string(json_quote(circ)) +
      ", \"library\": " + json_quote(lib_path) +
      ", \"options\": {\"backend\": \"cuts\", \"delay_factor\": 1.5}}\n";

  auto serve_once = [&]() {
    std::istringstream in(input);
    std::ostringstream out;
    ServeOptions sopt;
    sopt.auto_save = false;
    ServeSummary summary = run_serve(in, out, sopt);
    EXPECT_EQ(summary.errors, 0u) << out.str();
    return out.str();
  };

  std::string c_locale_response = serve_once();
  std::string comma_response;
  {
    CommaLocaleGuard guard;
    comma_response = serve_once();
  }
  // Bit-identical responses: under the old strtod/%g paths the comma
  // locale truncated the fractional option ("delay_factor": 1.5 -> 1)
  // and printed "1,5"-style numbers into the response line.
  EXPECT_EQ(comma_response, c_locale_response);
  JsonValue r = parse_json(
      c_locale_response.substr(0, c_locale_response.find('\n')));
  EXPECT_TRUE(r.get_bool("ok")) << c_locale_response;
  EXPECT_GT(r.get_number("delay"), 0.0);
  EXPECT_GT(r.get_number("area"), 0.0);
}

}  // namespace
}  // namespace dagmap
