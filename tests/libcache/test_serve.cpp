// Serve mode: the batched JSONL loop (libcache/serve.hpp).
//
// The properties under test:
//   * N interleaved requests across two libraries, mapped concurrently
//     on the pool, each produce a result bit-identical to a solo
//     single-threaded run of the same (circuit, library) — delay, BLIF
//     bytes and structural hash;
//   * responses come back in request order, one line per request;
//   * a malformed line yields a JSON error response for that line only
//     — the daemon keeps serving everything after it;
//   * the registry serves repeat libraries from memory, and option
//     variants ("supergates") are distinct cache entries.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/dag_mapper.hpp"
#include "decomp/tech_decomp.hpp"
#include "io/blif.hpp"
#include "libcache/compiled_library.hpp"
#include "libcache/json.hpp"
#include "libcache/serve.hpp"
#include "mapnet/write.hpp"

namespace dagmap {
namespace {

using libcache::JsonValue;
using libcache::json_quote;
using libcache::parse_json;

std::string data_path(const std::string& rel) {
  return std::string(DAGMAP_TEST_DATA_DIR) + "/golden/" + rel;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Copies a corpus genlib into the gtest temp dir so auto-saved sidecar
/// artifacts never land in the source tree.
std::string stage_genlib(const std::string& stem) {
  std::string path = ::testing::TempDir() + "serve_" + stem + ".genlib";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  EXPECT_TRUE(out.good());
  out << slurp(data_path(stem + ".genlib"));
  return path;
}

std::string request_line(const std::string& circuit_text,
                         const std::string& library_path,
                         const std::string& extra_options = "") {
  return "{\"circuit\": " + json_quote(circuit_text) +
         ", \"library\": " + json_quote(library_path) +
         (extra_options.empty() ? "" : ", \"options\": {" + extra_options + "}") +
         "}";
}

/// What a solo single-threaded run of (circuit, library, depth) yields.
struct SoloResult {
  double delay = 0.0;
  std::string blif;
  std::string structural_hash;
};

SoloResult solo_map(const std::string& circuit_text,
                    const std::string& genlib_path, unsigned depth = 0) {
  LibCompileOptions copt;
  copt.supergate_depth = depth;
  CompiledLibrary clib =
      compile_library(slurp(genlib_path), copt, genlib_path);
  Network circuit = parse_blif(circuit_text);
  Network subject = tech_decompose(circuit);
  DagMapOptions mopt;
  mopt.num_threads = 1;
  mopt.pattern_index = &clib.index;
  MapResult r = dag_map(subject, clib.library, mopt);
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(r.netlist.structural_hash()));
  return SoloResult{r.optimal_delay, write_mapped_blif(r.netlist), buf};
}

std::vector<JsonValue> run_and_parse(const std::string& input,
                                     const ServeOptions& options,
                                     ServeSummary* summary = nullptr) {
  std::istringstream in(input);
  std::ostringstream out;
  ServeSummary s = run_serve(in, out, options);
  if (summary) *summary = s;
  std::vector<JsonValue> responses;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) responses.push_back(parse_json(line));
  return responses;
}

TEST(Serve, InterleavedRequestsAcrossTwoLibrariesMatchSoloRuns) {
  std::string lib_a = stage_genlib("full_adder");
  std::string lib_b = stage_genlib("mux4");
  std::string circ_a = slurp(data_path("full_adder.blif"));
  std::string circ_b = slurp(data_path("mux4.blif"));

  // Twelve interleaved requests: A, B, A+supergates, B, repeated — two
  // libraries resident at once, three distinct cache entries.
  struct Case {
    const std::string* circuit;
    const std::string* library;
    unsigned depth;
  };
  std::vector<Case> cases;
  for (int rep = 0; rep < 4; ++rep) {
    cases.push_back({&circ_a, &lib_a, 0});
    cases.push_back({&circ_b, &lib_b, 0});
    cases.push_back({&circ_a, &lib_a, 2});
  }
  std::string input;
  for (const Case& c : cases)
    input += request_line(*c.circuit, *c.library,
                          c.depth ? "\"supergates\": 2" : "") + "\n";

  ServeOptions sopt;
  sopt.num_threads = 8;   // concurrent mapping on the pool
  sopt.max_batch = 5;     // force several multi-request batches
  sopt.auto_save = false;
  ServeSummary summary;
  std::vector<JsonValue> responses = run_and_parse(input, sopt, &summary);
  ASSERT_EQ(responses.size(), cases.size());
  EXPECT_EQ(summary.requests, cases.size());
  EXPECT_EQ(summary.errors, 0u);

  for (std::size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    const JsonValue& r = responses[i];
    EXPECT_TRUE(r.get_bool("ok"));
    // In-order delivery: ids are the request sequence numbers.
    EXPECT_EQ(r.get_number("id", -1), static_cast<double>(i));
    SoloResult solo =
        solo_map(*cases[i].circuit, *cases[i].library, cases[i].depth);
    EXPECT_EQ(r.get_number("delay"), solo.delay);
    EXPECT_EQ(r.get_string("blif"), solo.blif);
    EXPECT_EQ(r.get_string("structural_hash"), solo.structural_hash);
  }

  // Three distinct cache entries compiled once each; repeats hit memory.
  EXPECT_EQ(summary.registry.compiles, 3u);
  EXPECT_EQ(summary.registry.hits, cases.size() - 3u);
}

TEST(Serve, MalformedLineYieldsErrorAndTheDaemonSurvives) {
  std::string lib = stage_genlib("gray3");
  std::string circ = slurp(data_path("gray3.blif"));
  std::string input = request_line(circ, lib) + "\n" +
                      "this is not JSON\n" +
                      "{\"circuit\": 42, \"library\": " + json_quote(lib) +
                      "}\n" +
                      "{\"circuit\": \"not blif\", \"library\": " +
                      json_quote(lib) + "}\n" +
                      request_line(circ, lib) + "\n";

  ServeOptions sopt;
  sopt.auto_save = false;
  ServeSummary summary;
  std::vector<JsonValue> responses = run_and_parse(input, sopt, &summary);
  ASSERT_EQ(responses.size(), 5u);
  EXPECT_EQ(summary.errors, 3u);

  EXPECT_TRUE(responses[0].get_bool("ok"));
  EXPECT_FALSE(responses[1].get_bool("ok", true));
  EXPECT_NE(responses[1].get_string("error"), "");
  EXPECT_FALSE(responses[2].get_bool("ok", true));  // circuit not a string
  EXPECT_FALSE(responses[3].get_bool("ok", true));  // BLIF parse failure
  // The daemon finished the stream: the last request still mapped, and
  // identically to the first.
  EXPECT_TRUE(responses[4].get_bool("ok"));
  EXPECT_EQ(responses[4].get_string("blif"), responses[0].get_string("blif"));
  EXPECT_EQ(responses[4].get_number("id", -1), 4.0);
}

TEST(Serve, UnknownLibraryPathIsAPerRequestError) {
  std::string circ = slurp(data_path("mux4.blif"));
  std::string input =
      request_line(circ, ::testing::TempDir() + "no_such.genlib") + "\n";
  ServeOptions sopt;
  sopt.auto_save = false;
  std::vector<JsonValue> responses = run_and_parse(input, sopt);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].get_bool("ok", true));
  EXPECT_NE(responses[0].get_string("error").find("cannot read"),
            std::string::npos);
}

TEST(Serve, MissingLibraryFallsBackToTheServerDefault) {
  std::string lib = stage_genlib("decoder2");
  std::string circ = slurp(data_path("decoder2.blif"));
  std::string input = "{\"circuit\": " + json_quote(circ) + "}\n";

  ServeOptions with_default;
  with_default.default_library = lib;
  with_default.auto_save = false;
  std::vector<JsonValue> ok = run_and_parse(input, with_default);
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_TRUE(ok[0].get_bool("ok"));

  ServeOptions without_default;
  without_default.auto_save = false;
  std::vector<JsonValue> err = run_and_parse(input, without_default);
  ASSERT_EQ(err.size(), 1u);
  EXPECT_FALSE(err[0].get_bool("ok", true));
  EXPECT_NE(err[0].get_string("error").find("library"), std::string::npos);
}

TEST(Serve, RepeatLibraryRequestsServeFromMemory) {
  std::string lib = stage_genlib("parity5");
  std::string circ = slurp(data_path("parity5.blif"));
  std::string input;
  for (int i = 0; i < 3; ++i) input += request_line(circ, lib) + "\n";

  ServeOptions sopt;
  sopt.auto_save = false;
  std::vector<JsonValue> responses = run_and_parse(input, sopt);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].get_string("cache"), "compiled");
  EXPECT_EQ(responses[1].get_string("cache"), "memory");
  EXPECT_EQ(responses[2].get_string("cache"), "memory");
}

TEST(Serve, VerifyOptionRunsTheEquivalenceCheck) {
  std::string lib = stage_genlib("majxor");
  std::string circ = slurp(data_path("majxor.blif"));
  std::string input = request_line(circ, lib, "\"verify\": true") + "\n";
  ServeOptions sopt;
  sopt.auto_save = false;
  std::vector<JsonValue> responses = run_and_parse(input, sopt);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].get_bool("ok"));
  EXPECT_TRUE(responses[0].get_bool("verified"));
}

TEST(Serve, BlankLinesAreIgnored) {
  std::string lib = stage_genlib("mux4");
  std::string circ = slurp(data_path("mux4.blif"));
  std::string input = "\n  \n" + request_line(circ, lib) + "\n\n";
  ServeOptions sopt;
  sopt.auto_save = false;
  ServeSummary summary;
  std::vector<JsonValue> responses = run_and_parse(input, sopt, &summary);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(summary.requests, 1u);
}

}  // namespace
}  // namespace dagmap
