// Compiled-library cache: the artifact contract, test-first.
//
// The contract under test (libcache/compiled_library.hpp):
//   1. Transparency — a cache-loaded library is bit-identical to the
//      fresh-parsed one in every downstream artifact: arrival labels,
//      optimal delay, mapped BLIF bytes and structural hash, at 1/2/8
//      labeling threads, over the whole golden corpus, base and
//      supergate-augmented.
//   2. Byte stability — save -> load -> save reproduces the artifact
//      byte-for-byte.
//   3. Adversarial loading — truncation at every 64-byte boundary,
//      flipped magic/version bytes, corrupted checksums and hostile
//      oversized counts all yield a clean error result: no crash, no
//      exception, no partially populated library.  (This binary carries
//      the `asan` CTest label: configure with -DDAGMAP_SANITIZE=address
//      to run the loader under AddressSanitizer.)
//   4. Invalidation — a content change to the genlib source and an
//      option change each reject the stale artifact via the content
//      hash, and regenerating (the --save-lib path) heals it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/dag_mapper.hpp"
#include "decomp/tech_decomp.hpp"
#include "io/blif.hpp"
#include "libcache/binio.hpp"
#include "libcache/compiled_library.hpp"
#include "libcache/registry.hpp"
#include "mapnet/write.hpp"

namespace dagmap {
namespace {

std::string data_path(const std::string& rel) {
  return std::string(DAGMAP_TEST_DATA_DIR) + "/golden/" + rel;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spit(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out << text;
}

std::vector<std::string> corpus_stems() {
  std::vector<std::string> stems;
  std::ifstream in(data_path("golden.expect"));
  EXPECT_TRUE(in.good());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::string name = line.substr(0, line.find(' '));
    std::string stem = name.substr(0, name.find('+'));
    if (std::find(stems.begin(), stems.end(), stem) == stems.end())
      stems.push_back(stem);
  }
  return stems;
}

/// Every downstream artifact the transparency contract covers.
struct MapFingerprint {
  std::vector<double> labels;
  double delay = 0.0;
  std::string blif;
  std::uint64_t structural_hash = 0;

  bool operator==(const MapFingerprint&) const = default;
};

MapFingerprint fingerprint(const Network& subject, const GateLibrary& lib,
                           const PatternIndex* index, unsigned threads) {
  DagMapOptions mopt;
  mopt.num_threads = threads;
  mopt.pattern_index = index;
  MapResult r = dag_map(subject, lib, mopt);
  return MapFingerprint{std::move(r.label), r.optimal_delay,
                        write_mapped_blif(r.netlist),
                        r.netlist.structural_hash()};
}

void expect_clean_failure(const LibraryLoadResult& r, const std::string& ctx) {
  EXPECT_FALSE(r.ok) << ctx;
  EXPECT_FALSE(r.error.empty()) << ctx;
  // Never a partially populated bundle.
  EXPECT_EQ(r.lib.library.size(), 0u) << ctx;
  EXPECT_TRUE(r.lib.gates.empty()) << ctx;
  EXPECT_EQ(r.lib.index.size(), 0u) << ctx;
}

// ---- 1 + 2: transparency and byte stability -------------------------------

class LibCacheRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(LibCacheRoundTrip, GoldenCorpusBitIdenticalAt1_2_8Threads) {
  unsigned depth = GetParam();  // 0 = base library, 2 = --supergates
  for (const std::string& stem : corpus_stems()) {
    SCOPED_TRACE(stem + (depth ? "+supergates" : ""));
    std::string genlib_text = slurp(data_path(stem + ".genlib"));
    LibCompileOptions copt;
    copt.supergate_depth = depth;

    CompiledLibrary fresh = compile_library(genlib_text, copt, stem);
    std::string bytes = serialize_compiled_library(fresh);
    LibraryLoadResult loaded = deserialize_compiled_library(bytes);
    ASSERT_TRUE(loaded.ok) << loaded.error;

    // Byte stability: save -> load -> save.
    EXPECT_EQ(serialize_compiled_library(loaded.lib), bytes);

    // The loaded bundle advertises the same provenance.
    EXPECT_EQ(loaded.lib.source_hash,
              library_content_hash(genlib_text, copt));
    ASSERT_EQ(loaded.lib.library.size(), fresh.library.size());
    EXPECT_EQ(loaded.lib.index.size(), fresh.index.size());
    EXPECT_EQ(loaded.lib.npn_class_of, fresh.npn_class_of);

    Network circuit = parse_blif(slurp(data_path(stem + ".blif")));
    Network subject = tech_decompose(circuit);
    MapFingerprint want = fingerprint(subject, fresh.library, &fresh.index, 1);
    // The compiled path must also match the historical per-call path
    // (no pattern index passed, index built inside the Matcher).
    EXPECT_EQ(fingerprint(subject, fresh.library, nullptr, 1), want);
    for (unsigned threads : {1u, 2u, 8u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      EXPECT_EQ(
          fingerprint(subject, loaded.lib.library, &loaded.lib.index, threads),
          want);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BaseAndSupergates, LibCacheRoundTrip,
                         ::testing::Values(0u, 2u),
                         [](const auto& info) {
                           return info.param == 0 ? "base" : "supergates2";
                         });

TEST(LibCacheFile, SaveThenLoadRoundTripsThroughDisk) {
  std::string genlib_text = slurp(data_path("full_adder.genlib"));
  CompiledLibrary fresh = compile_library(genlib_text, {}, "full_adder");
  std::string path = ::testing::TempDir() + "libcache_roundtrip.dmlc";
  save_compiled_library_file(fresh, path);
  LibraryLoadResult loaded = load_compiled_library_file(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(serialize_compiled_library(loaded.lib),
            serialize_compiled_library(fresh));
  std::remove(path.c_str());
}

TEST(LibCacheFile, MissingFileIsACleanError) {
  LibraryLoadResult r =
      load_compiled_library_file(::testing::TempDir() + "does_not_exist.dmlc");
  expect_clean_failure(r, "missing file");
  EXPECT_NE(r.error.find("cannot open"), std::string::npos) << r.error;
}

// ---- 3: adversarial loading ----------------------------------------------

std::string golden_artifact(unsigned depth = 0) {
  LibCompileOptions copt;
  copt.supergate_depth = depth;
  return serialize_compiled_library(
      compile_library(slurp(data_path("full_adder.genlib")), copt, "fa"));
}

TEST(LibCacheLoader, TruncationAtEvery64ByteBoundaryFailsCleanly) {
  std::string bytes = golden_artifact();
  ASSERT_GT(bytes.size(), 128u);
  for (std::size_t cut = 0; cut < bytes.size(); cut += 64) {
    LibraryLoadResult r = deserialize_compiled_library(bytes.substr(0, cut));
    expect_clean_failure(r, "truncated at " + std::to_string(cut));
  }
  // One byte short of complete is still truncation.
  expect_clean_failure(
      deserialize_compiled_library(bytes.substr(0, bytes.size() - 1)),
      "truncated at size-1");
  // And the empty buffer.
  expect_clean_failure(deserialize_compiled_library(""), "empty buffer");
}

TEST(LibCacheLoader, FlippedMagicIsRejected) {
  std::string bytes = golden_artifact();
  for (std::size_t i = 0; i < 4; ++i) {
    std::string corrupt = bytes;
    corrupt[i] ^= 0x20;
    LibraryLoadResult r = deserialize_compiled_library(corrupt);
    expect_clean_failure(r, "magic byte " + std::to_string(i));
    EXPECT_NE(r.error.find("magic"), std::string::npos) << r.error;
  }
}

TEST(LibCacheLoader, UnsupportedVersionIsRejected) {
  std::string bytes = golden_artifact();
  std::string corrupt = bytes;
  corrupt[4] = static_cast<char>(kLibCacheVersion + 1);  // little-endian u32
  LibraryLoadResult r = deserialize_compiled_library(corrupt);
  expect_clean_failure(r, "bumped version");
  EXPECT_NE(r.error.find("version"), std::string::npos) << r.error;
}

TEST(LibCacheLoader, CorruptedPayloadFailsTheChecksum) {
  std::string bytes = golden_artifact();
  constexpr std::size_t kHeader = 4 + 4 + 8 + 8;
  for (std::size_t pos : {kHeader, kHeader + 100, bytes.size() - 1}) {
    std::string corrupt = bytes;
    corrupt[pos] ^= 0x01;
    LibraryLoadResult r = deserialize_compiled_library(corrupt);
    expect_clean_failure(r, "payload flip at " + std::to_string(pos));
    EXPECT_NE(r.error.find("checksum"), std::string::npos) << r.error;
  }
}

TEST(LibCacheLoader, EveryByteFlipOnASmallArtifactIsRejected) {
  // The FNV-1a integrity hash makes single-byte corruption detection
  // exact, not probabilistic: every payload flip changes the hash, and
  // every header flip breaks magic/version/size/hash validation.  Walk
  // the whole artifact to prove there is no blind spot.
  std::string bytes =
      serialize_compiled_library(compile_library(slurp(
          data_path("mux4.genlib")), {}, "mux4"));
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string corrupt = bytes;
    corrupt[pos] ^= 0x01;
    EXPECT_FALSE(deserialize_compiled_library(corrupt).ok)
        << "flip at byte " << pos << " of " << bytes.size() << " accepted";
  }
}

TEST(LibCacheLoader, HostileOversizedCountIsRejectedBeforeAllocation) {
  // Craft an artifact whose header and checksum are VALID but whose gate
  // count claims ~2^64 entries: the loader must reject on the
  // count-vs-remaining-bytes check, never attempt the allocation.
  libcache::ByteWriter payload;
  payload.u64(0);                       // source_hash
  payload.u32(0); payload.u32(4); payload.u32(3); payload.u32(4);  // options
  payload.f64(0.0);
  payload.u64(2000000);
  payload.str("hostile");
  payload.u64(0xFFFFFFFFFFFFFFFFull);   // genlib gate count
  libcache::ByteWriter artifact;
  artifact.u8('D'); artifact.u8('M'); artifact.u8('L'); artifact.u8('C');
  artifact.u32(kLibCacheVersion);
  artifact.u64(payload.size());
  artifact.u64(libcache::fnv1a64(payload.data()));
  std::string bytes = artifact.take() + payload.data();

  LibraryLoadResult r = deserialize_compiled_library(bytes);
  expect_clean_failure(r, "hostile count");
  EXPECT_NE(r.error.find("oversized"), std::string::npos) << r.error;
}

TEST(LibCacheLoader, OversizedStringLengthIsRejectedBeforeAllocation) {
  libcache::ByteWriter payload;
  payload.u64(0);
  payload.u32(0); payload.u32(4); payload.u32(3); payload.u32(4);
  payload.f64(0.0);
  payload.u64(2000000);
  payload.u64(0x7FFFFFFFFFFFFFFFull);   // name length, no bytes behind it
  libcache::ByteWriter artifact;
  artifact.u8('D'); artifact.u8('M'); artifact.u8('L'); artifact.u8('C');
  artifact.u32(kLibCacheVersion);
  artifact.u64(payload.size());
  artifact.u64(libcache::fnv1a64(payload.data()));
  std::string bytes = artifact.take() + payload.data();

  LibraryLoadResult r = deserialize_compiled_library(bytes);
  expect_clean_failure(r, "hostile string length");
  EXPECT_NE(r.error.find("oversized"), std::string::npos) << r.error;
}

TEST(LibCacheLoader, TrailingGarbageAfterPayloadIsRejected) {
  std::string bytes = golden_artifact();
  // Appending bytes breaks the header's payload_size accounting.
  expect_clean_failure(deserialize_compiled_library(bytes + "x"),
                       "trailing byte");
}

// ---- 4: content-hash invalidation ----------------------------------------

TEST(LibCacheStale, GenlibContentChangeInvalidatesTheArtifact) {
  std::string dir = ::testing::TempDir();
  std::string genlib_path = dir + "stale_content.genlib";
  std::string original = slurp(data_path("full_adder.genlib"));
  spit(genlib_path, original);

  // First lookup compiles and saves the sidecar.
  LibraryRegistry reg1;
  LibraryRegistry::Result r1 = reg1.get(genlib_path, {});
  ASSERT_TRUE(r1.ok()) << r1.error;
  EXPECT_EQ(r1.source, "compiled");
  EXPECT_EQ(reg1.stats().saves, 1u);

  // A fresh registry (new process) with unchanged source loads the
  // artifact instead of compiling.
  LibraryRegistry reg2;
  LibraryRegistry::Result r2 = reg2.get(genlib_path, {});
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_EQ(r2.source, "artifact");
  EXPECT_EQ(reg2.stats().compiles, 0u);

  // Touch the genlib CONTENT (a comment changes the bytes, so the
  // content hash — freshness is about bytes, not semantics).
  spit(genlib_path, original + "\n# retuned\n");
  LibraryRegistry reg3;
  LibraryRegistry::Result r3 = reg3.get(genlib_path, {});
  ASSERT_TRUE(r3.ok()) << r3.error;
  EXPECT_EQ(r3.source, "compiled");  // stale artifact NOT used
  EXPECT_EQ(reg3.stats().artifact_rejects, 1u);
  EXPECT_EQ(reg3.stats().compiles, 1u);

  // The recompile re-saved the sidecar (--save-lib regeneration path):
  // the next process accepts it again.
  LibraryRegistry reg4;
  LibraryRegistry::Result r4 = reg4.get(genlib_path, {});
  ASSERT_TRUE(r4.ok()) << r4.error;
  EXPECT_EQ(r4.source, "artifact");

  std::remove(genlib_path.c_str());
  std::remove(LibraryRegistry::artifact_path(genlib_path).c_str());
}

TEST(LibCacheStale, OptionChangeInvalidatesIndependentlyOfContent) {
  std::string text = slurp(data_path("full_adder.genlib"));
  CompiledLibrary base = compile_library(text, {}, "fa");

  // Same text, same options: fresh.
  EXPECT_TRUE(validate_compiled_library(base, text, {}));

  // Same text, different generation options: stale, and the reason says
  // so.
  LibCompileOptions sg;
  sg.supergate_depth = 2;
  std::string why;
  EXPECT_FALSE(validate_compiled_library(base, text, sg, &why));
  EXPECT_NE(why.find("options"), std::string::npos) << why;

  // Different text, same options: stale with the other reason.
  EXPECT_FALSE(validate_compiled_library(base, text + " ", {}, &why));
  EXPECT_NE(why.find("source"), std::string::npos) << why;

  // num_threads is NOT part of the key: generation is thread-invariant,
  // so a thread-count change must not invalidate.
  LibCompileOptions threads_only;
  threads_only.num_threads = 8;
  EXPECT_TRUE(validate_compiled_library(base, text, threads_only));
}

TEST(LibCacheStale, RegistryKeysOptionVariantsSeparately) {
  std::string dir = ::testing::TempDir();
  std::string genlib_path = dir + "stale_options.genlib";
  spit(genlib_path, slurp(data_path("mux4.genlib")));

  LibraryRegistry reg(LibraryRegistry::Options{.capacity = 4,
                                               .auto_save = false});
  LibCompileOptions sg;
  sg.supergate_depth = 2;
  LibraryRegistry::Result base = reg.get(genlib_path, {});
  LibraryRegistry::Result aug = reg.get(genlib_path, sg);
  ASSERT_TRUE(base.ok()) << base.error;
  ASSERT_TRUE(aug.ok()) << aug.error;
  EXPECT_NE(base.lib.get(), aug.lib.get());
  EXPECT_GE(aug.lib->library.size(), base.lib->library.size());
  EXPECT_EQ(reg.size(), 2u);
  // Both stay resident and hit.
  EXPECT_EQ(reg.get(genlib_path, {}).source, "memory");
  EXPECT_EQ(reg.get(genlib_path, sg).source, "memory");
  EXPECT_EQ(reg.stats().hits, 2u);

  std::remove(genlib_path.c_str());
}

TEST(LibCacheRegistry, LruBoundsResidency) {
  std::string dir = ::testing::TempDir();
  std::vector<std::string> paths;
  for (const char* stem : {"full_adder", "mux4", "gray3"}) {
    std::string p = dir + "lru_" + stem + ".genlib";
    spit(p, slurp(data_path(std::string(stem) + ".genlib")));
    paths.push_back(p);
  }

  LibraryRegistry reg(LibraryRegistry::Options{.capacity = 2,
                                               .auto_save = false});
  for (const std::string& p : paths) ASSERT_TRUE(reg.get(p, {}).ok());
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.stats().evictions, 1u);
  // The evicted first library recompiles; the recent two still hit.
  EXPECT_EQ(reg.get(paths[2], {}).source, "memory");
  EXPECT_EQ(reg.get(paths[0], {}).source, "compiled");

  for (const std::string& p : paths) std::remove(p.c_str());
}

}  // namespace
}  // namespace dagmap
