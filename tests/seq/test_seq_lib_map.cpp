// Tests for sequential library mapping (§4: Pan–Liu with pattern
// matching instead of cut enumeration).
#include "seq/seq_lib_map.hpp"

#include <gtest/gtest.h>

#include "core/dag_mapper.hpp"
#include "decomp/tech_decomp.hpp"
#include "gen/circuits.hpp"
#include "library/standard_libs.hpp"
#include "seq/seq_map.hpp"
#include "sim/simulator.hpp"
#include "timing/timing.hpp"

namespace dagmap {
namespace {

TEST(SeqLibMap, CombinationalEqualsDagMap) {
  GateLibrary lib = make_lib2_library();
  for (const char* which : {"fa", "cmp"}) {
    Network sg = std::string(which) == "fa"
                     ? tech_decompose(make_ripple_carry_adder(3))
                     : tech_decompose(make_comparator(4));
    MapResult comb = dag_map(sg, lib);
    SeqLibResult seq = optimal_period_lib_map(sg, lib);
    EXPECT_TRUE(seq.feasible);
    EXPECT_NEAR(seq.period, comb.optimal_delay, 1e-4) << which;
  }
}

TEST(SeqLibMap, NeverWorseThanMapOnly) {
  GateLibrary lib = make_lib2_library();
  for (std::uint64_t seed : {3ull, 7ull, 11ull}) {
    Network sg = tech_decompose(make_sequential_pipeline(4, 6, seed, 4));
    MapResult map_only = dag_map(sg, lib);
    SeqLibResult seq = optimal_period_lib_map(sg, lib);
    EXPECT_TRUE(seq.feasible);
    EXPECT_LE(seq.period, map_only.optimal_delay + 1e-4) << seed;
  }
}

TEST(SeqLibMap, BunchedRegisterRingReachesBalance) {
  // 6 NAND stages, 3 registers bunched together; with the minimal
  // library every stage costs one nand2 delay (1.2), so the optimum is
  // ceil-balanced: 2 stages per cycle = 2.4.
  GateLibrary lib = make_minimal_library();
  Network n("ring");
  std::vector<NodeId> pis(6);
  for (unsigned i = 0; i < 6; ++i)
    pis[i] = n.add_input("x" + std::to_string(i));
  NodeId fb = n.add_latch_placeholder("fb");
  NodeId cur = fb;
  for (unsigned i = 0; i < 6; ++i) {
    cur = n.add_nand2(cur, pis[i]);
    if (i == 0) {
      cur = n.add_latch(cur, "r0");
      cur = n.add_latch(cur, "r1");
    }
  }
  n.connect_latch(fb, cur);
  n.add_output(pis[0], "dummy");
  SeqLibOptions opt;
  opt.max_registers = 4;
  SeqLibResult r = optimal_period_lib_map(n, lib, opt);
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.period, 2.4, 1e-3);
  // Map-only is much worse: 5 stages in one cycle.
  MapResult map_only = dag_map(n, lib);
  EXPECT_GT(map_only.optimal_delay, 4.0);
}

TEST(SeqLibMap, FeasibilityMonotone) {
  GateLibrary lib = make_lib2_library();
  Network sg = tech_decompose(make_sequential_pipeline(3, 6, 13, 3));
  SeqLibOptions opt;
  SeqLibResult best = optimal_period_lib_map(sg, lib, opt);
  ASSERT_TRUE(best.feasible);
  EXPECT_FALSE(
      seq_lib_period_feasible(sg, lib, best.period * 0.8, opt, nullptr));
  EXPECT_TRUE(
      seq_lib_period_feasible(sg, lib, best.period * 1.2, opt, nullptr));
}

TEST(SeqLibMap, RicherLibraryNeverSlower) {
  Network sg = tech_decompose(make_sequential_pipeline(3, 6, 29, 4));
  GateLibrary minimal = make_minimal_library();
  GateLibrary lib2 = make_lib2_library();
  SeqLibResult r1 = optimal_period_lib_map(sg, minimal);
  SeqLibResult r2 = optimal_period_lib_map(sg, lib2);
  // lib2's nand2/inv delays differ from minimal's, so compare only
  // against lib2's own combinational bound — and sanity: both feasible.
  EXPECT_TRUE(r1.feasible);
  EXPECT_TRUE(r2.feasible);
}

TEST(SeqLibMap, MatchesCrossRegisters) {
  // AND feeding through a register into an inverter: an expanded match
  // (and2 pattern) reaches through the register, enabling period <
  // map-only when the register splits a natural gate.
  GateLibrary lib = make_lib2_library();
  SeqLibResult dummy;
  Network n("cross");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId g = n.add_nand2(a, b);
  NodeId l = n.add_latch(g, "r");
  NodeId h = n.add_inv(l);
  NodeId fb = n.add_latch(h, "r2");  // keep it sequentialized
  n.add_output(fb, "q");
  SeqLibResult r = optimal_period_lib_map(n, lib);
  EXPECT_TRUE(r.feasible);
  EXPECT_GT(r.matches_enumerated, 0u);
  // An and2 (delay 1.6) absorbed across the register bounds the period
  // by max(nand2, inv, and2 split) — at any rate well under the 2.2 of
  // nand2+inv in one cycle.
  EXPECT_LE(r.period, 1.7);
  (void)dummy;
}

TEST(SeqLibMap, ConstructCombinationalEquivalence) {
  // On a combinational subject the construction degenerates to a plain
  // mapped netlist (all lags zero): verify function and delay.
  GateLibrary lib = make_lib2_library();
  Network sg = tech_decompose(make_comparator(4));
  SeqLibMapping m = optimal_period_lib_map_construct(sg, lib);
  m.netlist.check();
  EXPECT_EQ(m.netlist.latches().size(), 0u);
  EXPECT_TRUE(check_equivalence(sg, m.netlist.to_network()).equivalent);
  EXPECT_LE(circuit_delay(m.netlist), m.summary.period + 1e-6);
}

TEST(SeqLibMap, ConstructRealizesThePeriod) {
  GateLibrary lib = make_lib2_library();
  for (std::uint64_t seed : {5ull, 17ull}) {
    Network sg = tech_decompose(make_sequential_pipeline(4, 6, seed, 4));
    SeqLibMapping m = optimal_period_lib_map_construct(sg, lib);
    m.netlist.check();
    // The continuous-retiming optimum is a lower bound; the
    // edge-triggered realization may borrow at most one pin delay per
    // register crossing (see seq_lib_map.hpp).
    double borrow = 0;
    for (const Gate& g : lib.gates())
      borrow = std::max(borrow, g.max_pin_delay());
    EXPECT_LE(m.realized_period, m.summary.period + borrow + 1e-6) << seed;
    EXPECT_GE(m.realized_period, m.summary.period - 1e-6) << seed;
    EXPECT_GT(m.netlist.latches().size(), 0u) << seed;
  }
}

TEST(SeqLibMap, ConstructBunchedRing) {
  GateLibrary lib = make_minimal_library();
  Network n("ring");
  std::vector<NodeId> pis(6);
  for (unsigned i = 0; i < 6; ++i)
    pis[i] = n.add_input("x" + std::to_string(i));
  NodeId fb = n.add_latch_placeholder("fb");
  NodeId cur = fb;
  for (unsigned i = 0; i < 6; ++i) {
    cur = n.add_nand2(cur, pis[i]);
    if (i == 0) {
      cur = n.add_latch(cur, "r0");
      cur = n.add_latch(cur, "r1");
    }
  }
  n.connect_latch(fb, cur);
  // Observe the ring through a 3-deep register chain so its logic is
  // live without pinning the ring's schedule to the first cycle.
  NodeId obs = n.add_latch(cur, "o0");
  obs = n.add_latch(obs, "o1");
  obs = n.add_latch(obs, "o2");
  n.add_output(obs, "q");
  SeqLibOptions opt;
  opt.max_registers = 4;
  SeqLibMapping m = optimal_period_lib_map_construct(n, lib, opt);
  m.netlist.check();
  EXPECT_NEAR(m.summary.period, 2.4, 1e-3);
  EXPECT_LE(circuit_delay(m.netlist), 2.4 + 1e-3);
  // Registers moved: the ring keeps its 3 registers (cycle count is a
  // retiming invariant); the observation chain keeps at least one.
  EXPECT_GE(m.netlist.latches().size(), 3u);
}

}  // namespace
}  // namespace dagmap
