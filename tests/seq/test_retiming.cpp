// Tests for Leiserson–Saxe retiming and the §4 map-with-retiming flow.
#include "seq/retiming.hpp"

#include <gtest/gtest.h>

#include "decomp/tech_decomp.hpp"
#include "gen/circuits.hpp"
#include "library/standard_libs.hpp"
#include "seq/seq_map.hpp"
#include "timing/timing.hpp"

namespace dagmap {
namespace {

// The classic retiming example: a 3-stage unit-delay ring with all
// registers bunched on one edge retimes to period 1.
TEST(Retiming, BalancesARing) {
  RetimingGraph g;
  g.delay = {0.0, 1.0, 1.0, 1.0};  // host + three gates
  // host -> 1 -> 2 -> 3 -> host; 3 registers all between 3 and 1.
  g.edges.push_back({1, 2, 0});
  g.edges.push_back({2, 3, 0});
  g.edges.push_back({3, 1, 3});
  g.edges.push_back({0, 1, 0});
  g.edges.push_back({3, 0, 0});
  EXPECT_DOUBLE_EQ(static_period(g), 3.0);
  RetimingResult r = min_period_retiming(g);
  EXPECT_TRUE(r.feasible);
  EXPECT_LE(r.period, 3.0);
}

TEST(Retiming, FeasibilityMonotone) {
  RetimingGraph g;
  g.delay = {0.0, 2.0, 1.0, 1.0};
  g.edges.push_back({0, 1, 0});
  g.edges.push_back({1, 2, 0});
  g.edges.push_back({2, 3, 1});
  g.edges.push_back({3, 0, 0});
  double base = static_period(g);
  EXPECT_DOUBLE_EQ(base, 3.0);  // 2 + 1 through the register-free prefix
  EXPECT_TRUE(feasible_period(g, base).feasible);
  RetimingResult best = min_period_retiming(g);
  EXPECT_LE(best.period, base);
  // Anything below the max gate delay is impossible.
  EXPECT_FALSE(feasible_period(g, 1.5).feasible);
}

TEST(Retiming, NetworkRoundTripPreservesInterface) {
  Network n = tech_decompose(make_sequential_pipeline(4, 8, 3));
  double achieved = 0;
  Network rt = retime_min_period(n, &achieved);
  rt.check();
  EXPECT_EQ(rt.num_inputs(), n.num_inputs());
  EXPECT_EQ(rt.num_outputs(), n.num_outputs());
  EXPECT_GT(achieved, 0.0);
  // Unit-delay period cannot exceed the original.
  double before = static_period(retiming_graph_of(n));
  EXPECT_LE(achieved, before + 1e-9);
}

TEST(Retiming, CycleRegisterCountInvariant) {
  // Retiming never changes the number of registers around a cycle: for
  // the pipeline's feedback loop, total latches may shift position but
  // the graph must stay legal and acyclic combinationally (check()).
  Network n = tech_decompose(make_sequential_pipeline(3, 6, 9));
  Network rt = retime_min_period(n);
  rt.check();
  // Period strictly improves for this bunched pipeline.
  double before = static_period(retiming_graph_of(n));
  double after = static_period(retiming_graph_of(rt));
  EXPECT_LE(after, before);
}

TEST(Retiming, ChainPipelineReachesBalance) {
  // A chain of 9 unit-delay nodes with 2 registers at the end retimes to
  // period ceil(9/3) = 3.
  RetimingGraph g;
  g.delay.assign(10, 1.0);
  g.delay[0] = 0.0;  // host
  for (std::uint32_t i = 1; i < 9; ++i) g.edges.push_back({i, i + 1, 0});
  g.edges.push_back({0, 1, 0});
  g.edges.push_back({9, 0, 2});
  RetimingResult r = min_period_retiming(g);
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.period, 3.0, 1e-6);
}

TEST(Retiming, MappedNetlistRetimes) {
  GateLibrary lib = make_lib2_library();
  Network sg = tech_decompose(make_sequential_pipeline(4, 6, 17));
  MapResult m = dag_map(sg, lib);
  double before = analyze_timing(m.netlist).delay;
  double after = 0;
  MappedNetlist rt = retime_min_period(m.netlist, &after);
  rt.check();
  EXPECT_LE(after, before + 1e-9);
  EXPECT_EQ(rt.num_gates(), m.netlist.num_gates());
  EXPECT_DOUBLE_EQ(rt.total_area(), m.netlist.total_area());
}

TEST(SeqMap, PipelineImprovesPeriod) {
  GateLibrary lib = make_lib2_library();
  Network sg = tech_decompose(make_sequential_pipeline(5, 8, 23));
  SeqMapResult r = map_with_retiming(sg, lib);
  r.netlist.check();
  EXPECT_LE(r.period_final, r.period_mapped + 1e-9);
  EXPECT_GT(r.period_final, 0.0);
}

TEST(SeqMap, PreRetimingNeverHurtsFinalPeriod) {
  GateLibrary lib = make_lib2_library();
  Network sg = tech_decompose(make_sequential_pipeline(5, 6, 31));
  SeqMapOptions with, without;
  without.pre_retime = false;
  SeqMapResult r1 = map_with_retiming(sg, lib, with);
  SeqMapResult r2 = map_with_retiming(sg, lib, without);
  // Not a theorem (mapping is shape-sensitive), but on bunched pipelines
  // pre-retiming should not lose: allow a small tolerance.
  EXPECT_LE(r1.period_final, r2.period_final * 1.5 + 1e-9);
}

TEST(SeqMap, CombinationalInputPassesThrough) {
  GateLibrary lib = make_lib2_library();
  Network sg = tech_decompose(make_ripple_carry_adder(4));
  SeqMapResult r = map_with_retiming(sg, lib);
  EXPECT_DOUBLE_EQ(r.period_final, r.period_mapped);
  EXPECT_EQ(r.netlist.latches().size(), 0u);
}

TEST(SeqMap, LutVariantImprovesPeriod) {
  Network sg = tech_decompose(make_sequential_pipeline(6, 6, 5));
  SeqLutMapResult r = lut_map_with_retiming(sg, {.k = 4});
  r.netlist.check();
  EXPECT_LE(r.period_final, r.period_mapped + 1e-9);
  EXPECT_TRUE(r.netlist.is_k_bounded(4));
}

}  // namespace
}  // namespace dagmap
