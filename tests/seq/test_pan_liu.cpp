// Tests for the Pan–Liu optimal clock-period computation (§4).
#include "seq/pan_liu.hpp"

#include <gtest/gtest.h>

#include "decomp/tech_decomp.hpp"
#include "gen/circuits.hpp"
#include "lutmap/flowmap.hpp"
#include "sim/simulator.hpp"
#include "seq/retiming.hpp"
#include "seq/seq_map.hpp"

namespace dagmap {
namespace {

// Ring of `m` NAND2 stages (each also reading a fresh PI) with `regs`
// registers placed at the given stage indices.  With k = 2 no LUT can
// absorb two ring stages (it would need 3 inputs), so the true optimal
// period is ceil(m / regs).
Network make_ring(unsigned m, const std::vector<unsigned>& reg_after) {
  Network n("ring");
  std::vector<NodeId> pis(m);
  for (unsigned i = 0; i < m; ++i)
    pis[i] = n.add_input("x" + std::to_string(i));
  // Feedback entry: a placeholder latch chain closed at the end.
  std::vector<NodeId> latches;
  NodeId cur = n.add_latch_placeholder("fb");
  latches.push_back(cur);
  NodeId ring_head = cur;
  NodeId last = kNullNode;
  for (unsigned i = 0; i < m; ++i) {
    cur = n.add_nand2(cur, pis[i]);
    last = cur;
    if (std::find(reg_after.begin(), reg_after.end(), i) !=
            reg_after.end() &&
        i + 1 < m) {
      cur = n.add_latch(cur, "r" + std::to_string(i));
    }
  }
  n.connect_latch(ring_head, last);
  n.add_output(pis[0], "dummy");  // keep an output; ring itself is state
  return n;
}

TEST(PanLiu, CombinationalEqualsFlowMapDepth) {
  for (unsigned k : {3u, 4u, 5u}) {
    Network sg = tech_decompose(make_alu(4));
    LutMapResult fm = flowmap(sg, {.k = k});
    SeqLutResult pl = optimal_period_lut_map(sg, {.k = k});
    EXPECT_TRUE(pl.feasible);
    EXPECT_EQ(pl.period, fm.depth) << "k=" << k;
  }
}

TEST(PanLiu, SpreadRingAchievesCycleRatio) {
  // 6 stages, registers after stages 1 and 3 plus the feedback latch =
  // 3 registers around the ring; ceil(6/3) = 2.
  Network ring = make_ring(6, {1, 3});
  SeqLutResult r = optimal_period_lut_map(ring, {.k = 2});
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.period, 2u);
}

TEST(PanLiu, BunchedRegistersStillReachOptimum) {
  // Same ring but with both extra registers bunched right after stage 0:
  // retiming (via expanded cuts) must still reach ceil(6/3) = 2, while
  // the map-only period is ~5.
  Network ring = make_ring(6, {0, 0});
  // make_ring dedups indices via find; emulate bunching with a chain:
  // build manually instead.
  Network n("bunched");
  std::vector<NodeId> pis(6);
  for (unsigned i = 0; i < 6; ++i)
    pis[i] = n.add_input("x" + std::to_string(i));
  NodeId fb = n.add_latch_placeholder("fb");
  NodeId cur = fb;
  NodeId after0 = kNullNode;
  for (unsigned i = 0; i < 6; ++i) {
    cur = n.add_nand2(cur, pis[i]);
    if (i == 0) {
      cur = n.add_latch(cur, "r0");
      cur = n.add_latch(cur, "r1");
      after0 = cur;
    }
  }
  (void)after0;
  n.connect_latch(fb, cur);
  n.add_output(pis[0], "dummy");
  SeqLutResult r = optimal_period_lut_map(n, {.k = 2, .max_registers = 4});
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.period, 2u);
  (void)ring;
}

TEST(PanLiu, FeasibilityMonotoneInPhi) {
  Network sg = tech_decompose(make_sequential_pipeline(4, 6, 21));
  SeqLutOptions opt{.k = 4, .max_registers = 3};
  SeqLutResult best = optimal_period_lut_map(sg, opt);
  ASSERT_TRUE(best.feasible);
  if (best.period > 1) {
    EXPECT_FALSE(seq_lut_period_feasible(sg, best.period - 1, opt, nullptr));
  }
  EXPECT_TRUE(seq_lut_period_feasible(sg, best.period + 1, opt, nullptr));
  EXPECT_TRUE(seq_lut_period_feasible(sg, best.period + 3, opt, nullptr));
}

TEST(PanLiu, NeverWorseThanMapOnly) {
  for (std::uint64_t seed : {7ull, 11ull, 13ull}) {
    Network sg = tech_decompose(make_sequential_pipeline(5, 6, seed));
    LutMapResult fm = flowmap(sg, {.k = 4});
    double map_only =
        static_period(retiming_graph_of(fm.netlist));
    SeqLutResult pl = optimal_period_lut_map(sg, {.k = 4});
    EXPECT_TRUE(pl.feasible);
    EXPECT_LE(pl.period, static_cast<unsigned>(map_only + 1e-9)) << seed;
  }
}

TEST(PanLiu, PeriodMonotoneInK) {
  Network sg = tech_decompose(make_sequential_pipeline(4, 8, 5));
  unsigned prev = ~0u;
  for (unsigned k : {3u, 4u, 5u}) {
    SeqLutResult r = optimal_period_lut_map(sg, {.k = k});
    EXPECT_TRUE(r.feasible);
    EXPECT_LE(r.period, prev);
    prev = r.period;
  }
}

TEST(PanLiu, CutsRespectKAndRegisterBound) {
  Network sg = tech_decompose(make_sequential_pipeline(3, 6, 9));
  SeqLutOptions opt{.k = 4, .max_registers = 2};
  SeqLutResult r = optimal_period_lut_map(sg, opt);
  ASSERT_TRUE(r.feasible);
  for (NodeId v = 0; v < sg.size(); ++v) {
    if (r.cut[v].empty()) continue;
    EXPECT_LE(r.cut[v].size(), opt.k);
    for (const SeqCutLeaf& leaf : r.cut[v])
      EXPECT_LE(leaf.registers, opt.max_registers + 2);  // leaf-only slack
  }
}

TEST(PanLiu, LabelsConsistentWithChosenCuts) {
  Network sg = tech_decompose(make_sequential_pipeline(3, 5, 31));
  SeqLutResult r = optimal_period_lut_map(sg, {.k = 4});
  ASSERT_TRUE(r.feasible);
  double phi = r.period;
  for (NodeId v = 0; v < sg.size(); ++v) {
    if (r.cut[v].empty()) continue;
    double worst = 0;
    bool first = true;
    for (const SeqCutLeaf& leaf : r.cut[v]) {
      double a = r.label[leaf.node] - phi * leaf.registers;
      worst = first ? a : std::max(worst, a);
      first = false;
    }
    EXPECT_GE(r.label[v] + 1e-9, worst + 1.0) << v;
  }
}

TEST(PanLiu, ConstructRealizesExactPeriod) {
  // Unit delays: the realization's register-to-register LUT depth equals
  // the computed optimum exactly (integrality; no time borrowing).
  for (std::uint64_t seed : {3ull, 11ull}) {
    Network sg = tech_decompose(make_sequential_pipeline(4, 6, seed, 6));
    SeqLutMapping m = optimal_period_lut_map_construct(sg, {.k = 4});
    m.netlist.check();
    EXPECT_TRUE(m.netlist.is_k_bounded(4)) << seed;
    EXPECT_LE(m.realized_period, m.summary.period + 1e-9) << seed;
  }
}

TEST(PanLiu, ConstructCombinationalIsEquivalent) {
  Network sg = tech_decompose(make_comparator(4));
  SeqLutMapping m = optimal_period_lut_map_construct(sg, {.k = 4});
  m.netlist.check();
  EXPECT_EQ(m.netlist.num_latches(), 0u);
  EXPECT_TRUE(check_equivalence(sg, m.netlist).equivalent);
  // Combinational optimum == FlowMap depth == realization depth.
  LutMapResult fm = flowmap(sg, {.k = 4});
  EXPECT_EQ(m.summary.period, fm.depth);
  EXPECT_EQ(m.netlist.depth(), fm.depth);
}

TEST(PanLiu, ConstructBunchedRingBeatsMapRetime) {
  // The bunched ring from above: construction must realize period 2.
  Network n("bunched");
  std::vector<NodeId> pis(6);
  for (unsigned i = 0; i < 6; ++i)
    pis[i] = n.add_input("x" + std::to_string(i));
  NodeId fb = n.add_latch_placeholder("fb");
  NodeId cur = fb;
  for (unsigned i = 0; i < 6; ++i) {
    cur = n.add_nand2(cur, pis[i]);
    if (i == 0) {
      cur = n.add_latch(cur, "r0");
      cur = n.add_latch(cur, "r1");
    }
  }
  n.connect_latch(fb, cur);
  // Observe through registers so the ring is live but not PO-pinned.
  NodeId obs = n.add_latch(cur, "o0");
  obs = n.add_latch(obs, "o1");
  obs = n.add_latch(obs, "o2");
  n.add_output(obs, "q");
  SeqLutMapping m =
      optimal_period_lut_map_construct(n, {.k = 2, .max_registers = 4});
  m.netlist.check();
  EXPECT_EQ(m.summary.period, 2u);
  EXPECT_LE(m.realized_period, 2.0 + 1e-9);
}

}  // namespace
}  // namespace dagmap
