// Edge cases of the timing backward passes and their consumers — the
// latent bugs fixed in the load-aware-rounds sweep:
//   * unwired latch placeholders (empty fanins()) must not crash the
//     analyzers or the fanout passes;
//   * latch D pins are timing endpoints: they seed required times and
//     get endpoint criticality in buffering (not the latch instance's
//     Q-side slack, which is +inf when Q is unconstrained);
//   * unconstrained (zero-fanout) nets keep +inf slack without
//     poisoning constrained paths, and drive zero load.
#include <gtest/gtest.h>

#include <limits>

#include "fanout/buffering.hpp"
#include "fanout/load_timing.hpp"
#include "library/standard_libs.hpp"
#include "netlist/assert.hpp"
#include "timing/timing.hpp"

namespace dagmap {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

const Gate* find_gate(const GateLibrary& lib, const std::string& name) {
  for (const Gate& g : lib.gates())
    if (g.name == name) return &g;
  return nullptr;
}

TEST(TimingEdges, UnwiredLatchPlaceholderDoesNotCrashTheAnalyzers) {
  GateLibrary lib = make_lib2_library();
  const Gate* inv = find_gate(lib, "inv");
  MappedNetlist net("t");
  InstId a = net.add_input("a");
  InstId g = net.add_gate(inv, {a});
  net.add_output(g, "o");
  net.add_latch_placeholder("ql");  // never wired: fanins() is empty

  TimingReport t = analyze_timing(net);
  EXPECT_GT(t.delay, 0.0);  // the PO path still measures
  LoadTimingReport lt = analyze_timing_loaded(net, LoadModel{});
  EXPECT_GT(lt.delay, 0.0);
  EXPECT_NEAR(t.delay, inv->pins[0].delay(), 1e-12);
}

TEST(TimingEdges, LatchDInputIsATimingEndpoint) {
  GateLibrary lib = make_lib2_library();
  const Gate* inv = find_gate(lib, "inv");
  MappedNetlist net("t");
  InstId a = net.add_input("a");
  InstId g1 = net.add_gate(inv, {a});
  InstId g2 = net.add_gate(inv, {g1});
  InstId l = net.add_latch_placeholder("l");
  net.connect_latch(l, g2);
  net.add_output(l, "q");

  TimingReport t = analyze_timing(net);
  // Delay is the arrival at the latch D input (the PO on Q arrives at 0).
  EXPECT_NEAR(t.delay, t.arrival[g2], 1e-12);
  // The D driver is required at the target — the whole chain is
  // critical, not unconstrained.
  EXPECT_NEAR(t.required[g2], t.target, 1e-12);
  EXPECT_NEAR(t.slack[g2], 0.0, 1e-12);
  EXPECT_NEAR(t.slack[g1], 0.0, 1e-12);

  LoadTimingReport lt = analyze_timing_loaded(net, LoadModel{});
  EXPECT_NEAR(lt.required[g2], lt.delay, 1e-12);
  EXPECT_NEAR(lt.slack[g2], 0.0, 1e-12);
}

TEST(TimingEdges, ZeroFanoutNetsStayUnconstrainedWithoutPoisoning) {
  GateLibrary lib = make_lib2_library();
  const Gate* inv = find_gate(lib, "inv");
  MappedNetlist net("t");
  InstId a = net.add_input("a");
  InstId g = net.add_gate(inv, {a});
  net.add_output(g, "o");
  InstId dangling = net.add_gate(inv, {g});  // drives nothing

  LoadTimingReport lt = analyze_timing_loaded(net, LoadModel{});
  // The dangling gate's output net has zero load and no required time.
  EXPECT_EQ(lt.net_load[dangling], 0.0);
  EXPECT_EQ(lt.required[dangling], kInf);
  EXPECT_EQ(lt.slack[dangling], kInf);
  // Its arrival is still computed (it loads its fanin).
  EXPECT_GT(lt.arrival[dangling], lt.arrival[g]);
  // The constrained path keeps a finite required time: the +inf from
  // the dangling branch never propagates backward into it.
  EXPECT_LT(lt.required[g], kInf);
  EXPECT_NEAR(lt.slack[g], 0.0, 1e-12);

  TimingReport t = analyze_timing(net);
  EXPECT_EQ(t.slack[dangling], kInf);
  EXPECT_NEAR(t.slack[g], 0.0, 1e-12);
}

TEST(TimingEdges, BufferingKeepsCriticalLatchDNearTheDriver) {
  // Regression: latch consumers used to be ranked by the latch
  // instance's slack — the Q-side value, +inf when Q is unconstrained —
  // so a critical D endpoint sorted dead last and sank to the bottom of
  // the buffer tree.  With endpoint criticality it must connect
  // directly to the driver while the unconstrained consumers take the
  // buffers.
  GateLibrary lib = make_lib2_library();
  const Gate* inv = find_gate(lib, "inv");
  MappedNetlist net("t");
  InstId a = net.add_input("a");
  InstId drv = net.add_gate(inv, {a});
  // 12 unconstrained consumers (drive nothing): +inf slack.
  for (int i = 0; i < 12; ++i) net.add_gate(inv, {drv});
  // The latch D endpoint — created last, so a criticality tie would
  // leave it at the very end of the stable sort.
  InstId l = net.add_latch_placeholder("l");
  net.connect_latch(l, drv);
  net.add_output(l, "q");

  BufferOptions opt;
  opt.max_branch = 4;
  BufferResult r = buffer_fanouts(net, lib, opt);
  ASSERT_GT(r.buffers_inserted, 0u);
  r.netlist.check();

  // The rebuilt latch's D driver must be the (non-buffer) driver gate
  // itself, not a buffer inserted for the slack-rich consumers.
  ASSERT_EQ(r.netlist.latches().size(), 1u);
  InstId l2 = r.netlist.latches()[0];
  ASSERT_EQ(r.netlist.fanins(l2).size(), 1u);
  InstId d = r.netlist.fanins(l2)[0];
  ASSERT_EQ(r.netlist.kind(d), Instance::Kind::GateInst);
  EXPECT_FALSE(r.netlist.gate(d)->is_buffer());
}

TEST(TimingEdges, BufferingRejectsAnUnwiredLatchPlaceholderCleanly) {
  GateLibrary lib = make_lib2_library();
  const Gate* inv = find_gate(lib, "inv");
  MappedNetlist net("t");
  InstId a = net.add_input("a");
  InstId g = net.add_gate(inv, {a});
  for (int i = 0; i < 8; ++i)
    net.add_output(net.add_gate(inv, {g}), "o" + std::to_string(i));
  net.add_latch_placeholder("loose");

  BufferOptions opt;
  opt.max_branch = 3;
  // Used to read past an empty fanin span (undefined behavior); the
  // rebuilt netlist's own check now reports the unwired latch instead.
  EXPECT_THROW(buffer_fanouts(net, lib, opt), ContractError);
}

}  // namespace
}  // namespace dagmap
