// Tests for LT-tree (Touati) fanout optimization.
#include "fanout/lt_tree.hpp"

#include <gtest/gtest.h>

#include "core/dag_mapper.hpp"
#include "decomp/tech_decomp.hpp"
#include "fanout/buffering.hpp"
#include "fanout/sizing.hpp"
#include "gen/circuits.hpp"
#include "library/standard_libs.hpp"
#include "netlist/assert.hpp"
#include "sim/simulator.hpp"

namespace dagmap {
namespace {

const Gate* find_gate(const GateLibrary& lib, const std::string& name) {
  for (const Gate& g : lib.gates())
    if (g.name == name) return &g;
  return nullptr;
}

TEST(LtTree, PreservesFunction) {
  GateLibrary lib = make_lib2_library();
  Network sg = tech_decompose(make_comparator(8));
  MappedNetlist m = dag_map(sg, lib).netlist;
  LtTreeResult r = buffer_fanouts_lt_tree(m, lib, LtTreeOptions{{}, 2});
  r.netlist.check();
  EXPECT_TRUE(check_equivalence(sg, r.netlist.to_network()).equivalent);
}

TEST(LtTree, ImprovesOverloadedDriver) {
  GateLibrary lib = make_lib2_library();
  const Gate* inv = find_gate(lib, "inv");
  MappedNetlist net("t");
  InstId a = net.add_input("a");
  InstId d = net.add_gate(inv, {a});
  for (int i = 0; i < 32; ++i)
    net.add_output(net.add_gate(inv, {d}), "o" + std::to_string(i));
  LtTreeResult r = buffer_fanouts_lt_tree(net, lib);
  EXPECT_GT(r.buffers_inserted, 0u);
  EXPECT_LT(r.delay_after, r.delay_before);
}

TEST(LtTree, CriticalSinkRidesAheadOfSlackySinks) {
  // One deep consumer (critical) + many shallow ones.  The critical
  // consumer must see at most as many buffers as the shallow ones.
  GateLibrary lib = make_lib2_library();
  const Gate* inv = find_gate(lib, "inv");
  const Gate* nand2 = find_gate(lib, "nand2");
  MappedNetlist net("t");
  InstId a = net.add_input("a");
  InstId d = net.add_gate(inv, {a});
  InstId chain = d;
  for (int i = 0; i < 8; ++i) chain = net.add_gate(inv, {chain});
  net.add_output(chain, "critical");
  for (int i = 0; i < 16; ++i)
    net.add_output(net.add_gate(nand2, {d, a}), "nc" + std::to_string(i));
  LtTreeResult r = buffer_fanouts_lt_tree(net, lib);
  r.netlist.check();
  EXPECT_LE(r.delay_after, r.delay_before + 1e-9);
}

TEST(LtTree, BeatsOrMatchesBalancedTreesWithSizes) {
  // With a sized buffer ladder the timing-driven chain should not lose
  // to structurally balanced trees on the suite (load-aware delay).
  GateLibrary sized = make_sized_library(lib2_genlib_text(), {1, 2, 4},
                                         "lib2-sized");
  GateLibrary base = make_lib2_library();
  int better_or_equal = 0, total = 0;
  for (const auto& b : make_small_suite()) {
    Network sg = tech_decompose(b.network);
    MappedNetlist m = dag_map(sg, base).netlist;
    BufferOptions bal_opt;
    bal_opt.max_branch = 4;
    BufferResult bal = buffer_fanouts(m, base, bal_opt);
    LtTreeResult lt = buffer_fanouts_lt_tree(m, sized);
    ++total;
    if (lt.delay_after <= bal.delay_after + 1e-9) ++better_or_equal;
    EXPECT_TRUE(check_equivalence(sg, lt.netlist.to_network()).equivalent)
        << b.name;
  }
  // Not a theorem, but the DP should win on most circuits.
  EXPECT_GE(better_or_equal * 2, total);
}

TEST(LtTree, RequiresBufferGate) {
  GateLibrary lib = make_minimal_library();
  MappedNetlist net("t");
  InstId a = net.add_input("a");
  net.add_output(a, "o");
  EXPECT_THROW(buffer_fanouts_lt_tree(net, lib), ContractError);
}

TEST(LtTree, SequentialNetsSupported) {
  GateLibrary lib = make_lib2_library();
  Network sg = tech_decompose(make_sequential_pipeline(3, 10, 3));
  MappedNetlist m = dag_map(sg, lib).netlist;
  LtTreeResult r = buffer_fanouts_lt_tree(m, lib, LtTreeOptions{{}, 2});
  r.netlist.check();
  EXPECT_EQ(r.netlist.latches().size(), m.latches().size());
  EXPECT_TRUE(check_equivalence(sg, r.netlist.to_network()).equivalent);
}

}  // namespace
}  // namespace dagmap
