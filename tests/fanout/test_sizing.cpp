// Tests for sized libraries and the post-mapping sizing pass.
#include "fanout/sizing.hpp"

#include <gtest/gtest.h>

#include "core/dag_mapper.hpp"
#include "decomp/tech_decomp.hpp"
#include "gen/circuits.hpp"
#include "library/standard_libs.hpp"
#include "sim/simulator.hpp"

namespace dagmap {
namespace {

TEST(SizedLibrary, ReplicatesGatesWithScaledParameters) {
  auto base = parse_genlib(lib2_genlib_text());
  auto sized = make_sized_genlib(base, {1, 2, 4});
  EXPECT_EQ(sized.size(), base.size() * 3);
  // Find inv and inv_x4.
  const GenlibGate *x1 = nullptr, *x4 = nullptr;
  for (const auto& g : sized) {
    if (g.name == "inv") x1 = &g;
    if (g.name == "inv_x4") x4 = &g;
  }
  ASSERT_TRUE(x1 && x4);
  EXPECT_DOUBLE_EQ(x4->area, 4 * x1->area);
  EXPECT_DOUBLE_EQ(x4->pins[0].input_load, 4 * x1->pins[0].input_load);
  EXPECT_DOUBLE_EQ(x4->pins[0].rise_fanout, x1->pins[0].rise_fanout / 4);
  EXPECT_DOUBLE_EQ(x4->pins[0].rise_block, x1->pins[0].rise_block);
}

TEST(SizedLibrary, BuildsAndStaysComplete) {
  GateLibrary lib = make_sized_library(lib2_genlib_text(), {1, 2, 4});
  EXPECT_TRUE(lib.is_complete_for_mapping());
  EXPECT_EQ(lib.size(), 28u * 3);
  // The minimum-area inverter is the x1.
  EXPECT_EQ(lib.inverter()->name, "inv");
}

TEST(Sizing, UpsizesOverloadedCriticalDriver) {
  GateLibrary base = make_lib2_library();
  GateLibrary sized = make_sized_library(lib2_genlib_text(), {1, 2, 4});
  const Gate* inv = nullptr;
  for (const Gate& g : base.gates())
    if (g.name == "inv") inv = &g;
  ASSERT_TRUE(inv);

  // A chain driving a big fanout: the overloaded driver is critical.
  MappedNetlist net("t");
  InstId a = net.add_input("a");
  InstId d = net.add_gate(inv, {a});
  for (int i = 0; i < 24; ++i)
    net.add_output(net.add_gate(inv, {d}), "o" + std::to_string(i));
  SizingResult r = size_gates(net, sized);
  EXPECT_GT(r.resized, 0u);
  EXPECT_LT(r.delay_after, r.delay_before);
  r.netlist.check();
}

TEST(Sizing, PreservesFunction) {
  GateLibrary base = make_lib2_library();
  GateLibrary sized = make_sized_library(lib2_genlib_text(), {1, 2, 4});
  Network sg = tech_decompose(make_comparator(8));
  MapResult m = dag_map(sg, base);
  SizingResult r = size_gates(m.netlist, sized);
  EXPECT_TRUE(check_equivalence(sg, r.netlist.to_network()).equivalent);
  EXPECT_LE(r.delay_after, r.delay_before + 1e-9);
}

TEST(Sizing, NonCriticalGatesNotBlindlyUpsized) {
  GateLibrary base = make_lib2_library();
  GateLibrary sized = make_sized_library(lib2_genlib_text(), {1, 2, 4});
  const Gate* inv = nullptr;
  const Gate* nand2 = nullptr;
  for (const Gate& g : base.gates()) {
    if (g.name == "inv") inv = &g;
    if (g.name == "nand2") nand2 = &g;
  }
  // A long critical inverter chain plus independent single-gate cones
  // with huge slack: the slack-rich gates must stay at x1.
  MappedNetlist net("t");
  InstId a = net.add_input("a");
  InstId b = net.add_input("b");
  InstId chain = a;
  for (int i = 0; i < 12; ++i) chain = net.add_gate(inv, {chain});
  net.add_output(chain, "crit");
  std::vector<InstId> lazy;
  for (int i = 0; i < 10; ++i) {
    lazy.push_back(net.add_gate(nand2, {a, b}));
    net.add_output(lazy.back(), "lazy" + std::to_string(i));
  }
  SizingResult r = size_gates(net, sized);
  // None of the slack-rich nand2 cones may be upsized.
  for (InstId id : lazy)
    EXPECT_EQ(r.netlist.gate(id)->name, "nand2") << id;
  EXPECT_LE(r.delay_after, r.delay_before + 1e-9);
}

TEST(Sizing, LoadTimingSlackConsistency) {
  GateLibrary base = make_lib2_library();
  Network sg = tech_decompose(make_alu(4));
  MapResult m = dag_map(sg, base);
  LoadTimingReport t = analyze_timing_loaded(m.netlist);
  // Somewhere the slack is (near) zero — the critical path; slack is
  // never significantly negative against the measured delay.
  double min_slack = 1e300;
  for (InstId id = 0; id < m.netlist.size(); ++id)
    if (t.slack[id] < min_slack) min_slack = t.slack[id];
  EXPECT_NEAR(min_slack, 0.0, 1e-9);
}

}  // namespace
}  // namespace dagmap
