// Tests for load-aware timing and buffer-tree construction.
#include "fanout/buffering.hpp"

#include <gtest/gtest.h>

#include "core/dag_mapper.hpp"
#include "decomp/tech_decomp.hpp"
#include "gen/circuits.hpp"
#include "library/standard_libs.hpp"
#include "netlist/assert.hpp"
#include "sim/simulator.hpp"
#include "timing/timing.hpp"

namespace dagmap {
namespace {

const Gate* find_gate(const GateLibrary& lib, const std::string& name) {
  for (const Gate& g : lib.gates())
    if (g.name == name) return &g;
  return nullptr;
}

TEST(LoadTiming, LinearModelFormula) {
  GateLibrary lib = make_lib2_library();
  const Gate* inv = find_gate(lib, "inv");  // block 1.0, slope 0.2, load 1
  MappedNetlist net("t");
  InstId a = net.add_input("a");
  InstId g = net.add_gate(inv, {a});
  net.add_output(g, "o");
  LoadModel model;
  model.wire_load_per_fanout = 0.5;
  model.primary_output_load = 2.0;
  LoadTimingReport r = analyze_timing_loaded(net, model);
  // g drives one PO: load = 2.0; delay = 1.0 + 0.2*2.0.
  EXPECT_NEAR(r.net_load[g], 2.0, 1e-12);
  EXPECT_NEAR(r.delay, 1.0 + 0.2 * 2.0, 1e-12);
  // a drives one inv pin: load = 1 (pin) + 0.5 (wire).
  EXPECT_NEAR(r.net_load[a], 1.5, 1e-12);
}

TEST(LoadTiming, FanoutIncreasesDelay) {
  GateLibrary lib = make_lib2_library();
  const Gate* inv = find_gate(lib, "inv");
  for (int fanout : {1, 4, 16}) {
    MappedNetlist net("t");
    InstId a = net.add_input("a");
    InstId g = net.add_gate(inv, {a});
    std::vector<InstId> sinks;
    for (int i = 0; i < fanout; ++i)
      sinks.push_back(net.add_gate(inv, {g}));
    for (int i = 0; i < fanout; ++i)
      net.add_output(sinks[i], "o" + std::to_string(i));
    double loaded = circuit_delay_loaded(net);
    double unloaded = circuit_delay(net);
    EXPECT_GT(loaded, unloaded);
    // Load-aware delay grows with fanout.
    static double prev = 0;
    if (fanout > 1) {
      EXPECT_GT(loaded, prev);
    }
    prev = loaded;
  }
}

TEST(Buffering, HighFanoutNetGetsTree) {
  GateLibrary lib = make_lib2_library();
  const Gate* inv = find_gate(lib, "inv");
  MappedNetlist net("t");
  InstId a = net.add_input("a");
  InstId g = net.add_gate(inv, {a});
  for (int i = 0; i < 32; ++i)
    net.add_output(net.add_gate(inv, {g}), "o" + std::to_string(i));
  BufferOptions opt;
  opt.max_branch = 4;
  BufferResult r = buffer_fanouts(net, lib, opt);
  EXPECT_GT(r.buffers_inserted, 0u);
  EXPECT_LT(r.delay_after, r.delay_before);
  // Every net in the result obeys the branching bound (count fanouts).
  std::vector<unsigned> fanout(r.netlist.size(), 0);
  for (InstId id = 0; id < r.netlist.size(); ++id)
    for (InstId f : r.netlist.fanins(id)) ++fanout[f];
  for (const Output& o : r.netlist.outputs()) ++fanout[o.node];
  for (InstId id = 0; id < r.netlist.size(); ++id)
    EXPECT_LE(fanout[id], opt.max_branch) << "instance " << id;
}

TEST(Buffering, PreservesFunction) {
  GateLibrary lib = make_lib2_library();
  Network sg = tech_decompose(make_comparator(8));
  MapResult m = dag_map(sg, lib);
  BufferOptions opt;
  opt.max_branch = 3;
  BufferResult r = buffer_fanouts(m.netlist, lib, opt);
  r.netlist.check();
  EXPECT_TRUE(check_equivalence(sg, r.netlist.to_network()).equivalent);
}

TEST(Buffering, LowFanoutNetsUntouched) {
  GateLibrary lib = make_lib2_library();
  const Gate* nand2 = find_gate(lib, "nand2");
  MappedNetlist net("t");
  InstId a = net.add_input("a");
  InstId b = net.add_input("b");
  InstId g = net.add_gate(nand2, {a, b});
  net.add_output(g, "o");
  BufferResult r = buffer_fanouts(net, lib);
  EXPECT_EQ(r.buffers_inserted, 0u);
  EXPECT_EQ(r.netlist.num_gates(), 1u);
}

TEST(Buffering, CriticalConsumersStayShallow) {
  // The most critical consumer must not sit under more buffers than the
  // least critical one.
  GateLibrary lib = make_lib2_library();
  const Gate* inv = find_gate(lib, "inv");
  const Gate* nand2 = find_gate(lib, "nand2");
  MappedNetlist net("t");
  InstId a = net.add_input("a");
  InstId g = net.add_gate(inv, {a});
  // One deep (critical) consumer chain and many shallow ones.
  InstId chain = g;
  for (int i = 0; i < 6; ++i) chain = net.add_gate(inv, {chain});
  net.add_output(chain, "critical");
  for (int i = 0; i < 12; ++i) {
    InstId x = net.add_gate(nand2, {g, a});
    net.add_output(x, "nc" + std::to_string(i));
  }
  BufferOptions opt;
  opt.max_branch = 4;
  BufferResult r = buffer_fanouts(net, lib, opt);
  // Functional check plus: delay after buffering should beat before
  // (driver g was overloaded with 13 consumers).
  EXPECT_GT(r.buffers_inserted, 0u);
  EXPECT_LT(r.delay_after, r.delay_before + 1e-9);
}

TEST(Buffering, SequentialNetsBuffered) {
  GateLibrary lib = make_lib2_library();
  Network sg = tech_decompose(make_sequential_pipeline(3, 12, 77));
  MapResult m = dag_map(sg, lib);
  BufferOptions opt;
  opt.max_branch = 2;
  BufferResult r = buffer_fanouts(m.netlist, lib, opt);
  r.netlist.check();
  EXPECT_EQ(r.netlist.latches().size(), m.netlist.latches().size());
  EXPECT_TRUE(check_equivalence(sg, r.netlist.to_network()).equivalent);
}

TEST(Buffering, RequiresBufferGate) {
  GateLibrary lib = make_minimal_library();  // no buffer
  MappedNetlist net("t");
  InstId a = net.add_input("a");
  net.add_output(a, "o");
  EXPECT_THROW(buffer_fanouts(net, lib), ContractError);
}

}  // namespace
}  // namespace dagmap
