// Parser robustness: randomly mutated inputs must either parse or throw
// ParseError/ContractError — never crash, hang, or corrupt memory.
#include <gtest/gtest.h>

#include "io/blif.hpp"
#include "io/genlib.hpp"
#include "netlist/assert.hpp"

namespace dagmap {
namespace {

struct Rng {
  std::uint64_t s;
  explicit Rng(std::uint64_t seed) : s(seed * 0x9E3779B97F4A7C15ull + 1) {}
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

std::string mutate(const std::string& base, Rng& rng, int edits) {
  std::string s = base;
  for (int e = 0; e < edits && !s.empty(); ++e) {
    std::size_t pos = rng.next() % s.size();
    switch (rng.next() % 4) {
      case 0: s.erase(pos, 1 + rng.next() % 3); break;
      case 1: s.insert(pos, 1, static_cast<char>(32 + rng.next() % 95)); break;
      case 2: s[pos] = static_cast<char>(32 + rng.next() % 95); break;
      default: {  // duplicate a slice
        std::size_t len = std::min<std::size_t>(8, s.size() - pos);
        s.insert(pos, s.substr(pos, len));
        break;
      }
    }
  }
  return s;
}

const char* kBlifSeed =
    ".model fuzz\n.inputs a b c\n.outputs x y\n"
    ".latch d q 0\n"
    ".names a b t\n11 1\n"
    ".names t c d\n1- 1\n-1 1\n"
    ".names q t x\n10 1\n"
    ".names d y\n0 1\n.end\n";

const char* kGenlibSeed =
    "GATE inv 1 O=!a;\n PIN a INV 1 999 1.0 0.2 1.0 0.2\n"
    "GATE nand2 2 O=!(a*b);\n PIN * INV 1 999 1.2 0.2 1.2 0.2\n"
    "GATE aoi21 3 O=!(a*b+c);\n PIN * INV 1 999 1.6 0.3 1.6 0.3\n";

TEST(ParserRobustness, MutatedBlifNeverCrashes) {
  Rng rng(2024);
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::string text = mutate(kBlifSeed, rng, 1 + trial % 6);
    try {
      Network n = parse_blif(text);
      n.check();
      ++parsed;
    } catch (const ParseError&) {
      ++rejected;
    } catch (const ContractError&) {
      ++rejected;
    }
  }
  // Both outcomes must occur: light mutations often stay valid, heavy
  // ones get rejected.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(ParserRobustness, MutatedGenlibNeverCrashes) {
  Rng rng(777);
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::string text = mutate(kGenlibSeed, rng, 1 + trial % 6);
    try {
      auto gates = parse_genlib(text);
      ++parsed;
      (void)gates;
    } catch (const ParseError&) {
      ++rejected;
    } catch (const ContractError&) {
      ++rejected;
    }
  }
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(ParserRobustness, ExpressionTorture) {
  Rng rng(31337);
  const std::string alphabet = "ab!*+()' ";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string expr;
    std::size_t len = 1 + rng.next() % 24;
    for (std::size_t i = 0; i < len; ++i)
      expr += alphabet[rng.next() % alphabet.size()];
    try {
      Expr e = parse_expression(expr);
      auto vars = expr_variables(e);
      (void)expr_truth_table(e, vars);
    } catch (const ParseError&) {
    } catch (const ContractError&) {
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace dagmap
