// Liberty-subset reader (io/liberty.hpp): golden-fixture parsing, NLDM
// block+slope collapse, per-arc timing, sequential-cell skipping,
// malformed-input rejection (never a crash), locale independence, and
// the parse -> GateLibrary -> map round trip.
#include "io/liberty.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <fstream>
#include <locale>
#include <sstream>
#include <string>

#include "core/dag_mapper.hpp"
#include "decomp/tech_decomp.hpp"
#include "io/blif.hpp"
#include "io/expr.hpp"
#include "library/gate_library.hpp"
#include "sim/simulator.hpp"

namespace dagmap {
namespace {

std::string data_path(const std::string& rel) {
  return std::string(DAGMAP_TEST_DATA_DIR) + "/" + rel;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string golden_text() { return slurp(data_path("golden.lib")); }

const GenlibGate* find(const LibertyLibrary& lib, const std::string& name) {
  for (const GenlibGate& g : lib.gates)
    if (g.name == name) return &g;
  return nullptr;
}

TEST(Liberty, SniffsTheFormat) {
  EXPECT_TRUE(looks_like_liberty(golden_text()));
  EXPECT_TRUE(looks_like_liberty("  /* c */ library(x) { }"));
  EXPECT_FALSE(looks_like_liberty("GATE inv 1 O=!a;\n PIN * INV 1 999 1 0 1 0"));
  EXPECT_FALSE(looks_like_liberty(""));
  EXPECT_FALSE(looks_like_liberty("library without parens"));
}

TEST(Liberty, ParsesTheGoldenFixture) {
  LibertyLibrary lib = parse_liberty(golden_text());
  EXPECT_EQ(lib.name, "golden_lib");
  EXPECT_EQ(lib.gates.size(), 6u);   // INV, NAND2, NOR2, AND2, AOI21, XOR2
  EXPECT_EQ(lib.cells_skipped, 2u);  // DFFX1 (sequential), TBUFX1 (no function)
  EXPECT_EQ(find(lib, "DFFX1"), nullptr);
  EXPECT_EQ(find(lib, "TBUFX1"), nullptr);
}

TEST(Liberty, LinearArcsMapDirectly) {
  LibertyLibrary lib = parse_liberty(golden_text());
  const GenlibGate* nor2 = find(lib, "NOR2X1");
  ASSERT_NE(nor2, nullptr);
  EXPECT_DOUBLE_EQ(nor2->area, 2.0);
  ASSERT_EQ(nor2->pins.size(), 2u);
  for (const GenlibPin& p : nor2->pins) {
    EXPECT_DOUBLE_EQ(p.input_load, 1.0);
    EXPECT_DOUBLE_EQ(p.rise_block, 2.4);
    EXPECT_DOUBLE_EQ(p.rise_fanout, 0.25);
    EXPECT_DOUBLE_EQ(p.fall_block, 2.2);
    EXPECT_DOUBLE_EQ(p.fall_fanout, 0.2);
  }
}

TEST(Liberty, OneDimensionalNldmCollapsesToBlockPlusSlope) {
  // INVX1's cell_rise over loads {0.5, 1, 2, 4} is exactly 1.0 + 0.2*L,
  // so the least-squares fit must recover block/slope exactly.
  LibertyLibrary lib = parse_liberty(golden_text());
  const GenlibGate* inv = find(lib, "INVX1");
  ASSERT_NE(inv, nullptr);
  ASSERT_EQ(inv->pins.size(), 1u);
  EXPECT_NEAR(inv->pins[0].rise_block, 1.0, 1e-9);
  EXPECT_NEAR(inv->pins[0].rise_fanout, 0.2, 1e-9);
  EXPECT_NEAR(inv->pins[0].fall_block, 0.9, 1e-9);
  EXPECT_NEAR(inv->pins[0].fall_fanout, 0.2, 1e-9);
}

TEST(Liberty, TwoDimensionalNldmAveragesOverTheTransitionAxis) {
  // NAND2X1's rows (transition axis) average to 1.9 + 0.2*L rise and
  // 1.8 + 0.2*L fall; the template names which axis is capacitance.
  LibertyLibrary lib = parse_liberty(golden_text());
  const GenlibGate* nand2 = find(lib, "NAND2X1");
  ASSERT_NE(nand2, nullptr);
  ASSERT_EQ(nand2->pins.size(), 2u);
  for (const GenlibPin& p : nand2->pins) {
    EXPECT_NEAR(p.rise_block, 1.9, 1e-9);
    EXPECT_NEAR(p.rise_fanout, 0.2, 1e-9);
    EXPECT_NEAR(p.fall_block, 1.8, 1e-9);
    EXPECT_NEAR(p.fall_fanout, 0.2, 1e-9);
  }
}

TEST(Liberty, PerArcTimingKeysOnRelatedPin) {
  LibertyLibrary lib = parse_liberty(golden_text());
  const GenlibGate* aoi = find(lib, "AOI21X1");
  ASSERT_NE(aoi, nullptr);
  ASSERT_EQ(aoi->pins.size(), 3u);
  // Pins follow the function's variable order: A, B, C.
  EXPECT_EQ(aoi->pins[0].name, "A");
  EXPECT_EQ(aoi->pins[1].name, "B");
  EXPECT_EQ(aoi->pins[2].name, "C");
  EXPECT_DOUBLE_EQ(aoi->pins[0].rise_block, 3.1);
  EXPECT_DOUBLE_EQ(aoi->pins[1].rise_block, 3.1);
  EXPECT_DOUBLE_EQ(aoi->pins[2].rise_block, 2.5);  // C's own, faster arc
  EXPECT_DOUBLE_EQ(aoi->pins[2].fall_block, 2.3);
  EXPECT_DOUBLE_EQ(aoi->pins[0].input_load, 1.1);
  EXPECT_DOUBLE_EQ(aoi->pins[2].input_load, 1.2);
}

TEST(Liberty, XorFunctionsExpand) {
  // "A ^ B" has no direct Expr form; the reader expands it on the spot.
  LibertyLibrary lib = parse_liberty(golden_text());
  const GenlibGate* x = find(lib, "XOR2X1");
  ASSERT_NE(x, nullptr);
  ASSERT_EQ(x->pins.size(), 2u);
  EXPECT_NEAR(x->pins[0].rise_block, 3.4, 1e-9);
  EXPECT_NEAR(x->pins[0].rise_fanout, 0.4, 1e-9);
  // Truth-table check through the library build: 2-input XOR is 0110.
  GateLibrary built = GateLibrary::from_genlib(lib.gates, lib.name);
  const Gate* gx = nullptr;
  for (const Gate& g : built.gates())
    if (g.name == "XOR2X1") gx = &g;
  ASSERT_NE(gx, nullptr);
  ASSERT_EQ(gx->num_inputs(), 2u);
  EXPECT_FALSE(gx->function.bit(0));  // A=0 B=0
  EXPECT_TRUE(gx->function.bit(1));   // A=1 B=0
  EXPECT_TRUE(gx->function.bit(2));   // A=0 B=1
  EXPECT_FALSE(gx->function.bit(3));  // A=1 B=1
}

TEST(Liberty, ParseToLibraryToMapRoundTrip) {
  LibertyLibrary parsed = parse_liberty(golden_text());
  GateLibrary lib = GateLibrary::from_genlib(parsed.gates, parsed.name);
  ASSERT_TRUE(lib.is_complete_for_mapping());
  Network circuit = parse_blif(slurp(data_path("golden/full_adder.blif")));
  Network subject = tech_decompose(circuit);
  MapResult r = dag_map(subject, lib);
  EXPECT_GT(r.netlist.num_gates(), 0u);
  EXPECT_TRUE(check_equivalence(circuit, r.netlist.to_network()).equivalent);
}

TEST(Liberty, RejectsTruncationEverywhere) {
  // Cutting the file at any coarse prefix must raise ParseError (or,
  // for a prefix that happens to still close the library group before
  // any cell, the "no usable cells" error) — never crash or hang.
  std::string text = golden_text();
  for (std::size_t cut = 1; cut < text.size(); cut += 97) {
    std::string prefix = text.substr(0, cut);
    EXPECT_THROW(parse_liberty(prefix), ParseError) << "prefix " << cut;
  }
}

TEST(Liberty, RejectsMalformedInput) {
  EXPECT_THROW(parse_liberty(""), ParseError);
  EXPECT_THROW(parse_liberty("not liberty at all"), ParseError);
  // GENLIB text is not Liberty.
  EXPECT_THROW(parse_liberty("GATE inv 1 O=!a;\n PIN * INV 1 999 1 0 1 0"),
               ParseError);
  // Unbalanced braces.
  EXPECT_THROW(parse_liberty("library (l) { cell (c) { }"), ParseError);
  EXPECT_THROW(parse_liberty("library (l) { } }"), ParseError);
  // A library with no usable combinational cell.
  EXPECT_THROW(parse_liberty("library (l) { }"), ParseError);
  // NaN / inf table entries must be rejected, not fitted.
  const char* nan_lib =
      "library (l) { cell (inv) { area : 1;"
      " pin (A) { direction : input; capacitance : 1; }"
      " pin (Y) { direction : output; function : \"A'\";"
      " timing () { related_pin : \"A\";"
      " cell_rise (t) { index_1 (\"1, 2\"); values (\"nan, 2.0\"); } } } } }";
  EXPECT_THROW(parse_liberty(nan_lib), ParseError);
  const char* inf_lib =
      "library (l) { cell (inv) { area : 1;"
      " pin (A) { direction : input; capacitance : 1; }"
      " pin (Y) { direction : output; function : \"A'\";"
      " timing () { related_pin : \"A\"; intrinsic_rise : inf;"
      " intrinsic_fall : 1; } } } }";
  EXPECT_THROW(parse_liberty(inf_lib), ParseError);
}

TEST(Liberty, SkippingIsNotAnErrorWhileUsableCellsRemain) {
  // A multi-output cell is skipped, and the rest of the library loads.
  std::string text =
      "library (l) {\n"
      "  cell (weird) { area : 1;\n"
      "    pin (A) { direction : input; capacitance : 1; }\n"
      "    pin (X) { direction : output; function : \"A\"; }\n"
      "    pin (Y) { direction : output; function : \"A'\"; }\n"
      "  }\n"
      "  cell (inv) { area : 1;\n"
      "    pin (A) { direction : input; capacitance : 1; }\n"
      "    pin (Y) { direction : output; function : \"A'\";\n"
      "      timing () { related_pin : \"A\"; intrinsic_rise : 1;\n"
      "        intrinsic_fall : 1; } }\n"
      "  }\n"
      "}\n";
  LibertyLibrary lib = parse_liberty(text);
  EXPECT_EQ(lib.gates.size(), 1u);
  EXPECT_EQ(lib.cells_skipped, 1u);
  EXPECT_EQ(lib.gates[0].name, "inv");
}

// A numpunct facet with ',' as the decimal point — what a de_DE-style
// locale installs.  Injected directly so the test does not depend on
// which locales the host has generated.
struct CommaDecimal : std::numpunct<char> {
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

class CommaLocaleGuard {
 public:
  CommaLocaleGuard()
      : cxx_previous_(std::locale::global(
            std::locale(std::locale::classic(), new CommaDecimal))) {
    for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "de_DE"}) {
      if (std::setlocale(LC_NUMERIC, name) != nullptr) {
        c_changed_ = true;
        break;
      }
    }
  }
  ~CommaLocaleGuard() {
    std::locale::global(cxx_previous_);
    if (c_changed_) std::setlocale(LC_NUMERIC, "C");
  }

 private:
  std::locale cxx_previous_;
  bool c_changed_ = false;
};

TEST(Liberty, ParsesDotDecimalsUnderCommaLocale) {
  // Liberty numbers are '.'-formatted by definition; the reader goes
  // through parse_double_strict, so a comma-decimal process locale must
  // change nothing.
  CommaLocaleGuard guard;
  LibertyLibrary lib = parse_liberty(golden_text());
  const GenlibGate* inv = find(lib, "INVX1");
  ASSERT_NE(inv, nullptr);
  EXPECT_NEAR(inv->pins[0].rise_block, 1.0, 1e-9);
  EXPECT_NEAR(inv->pins[0].rise_fanout, 0.2, 1e-9);
}

}  // namespace
}  // namespace dagmap
