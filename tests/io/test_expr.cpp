// Unit tests for the GENLIB expression parser.
#include "io/expr.hpp"

#include <gtest/gtest.h>

namespace dagmap {
namespace {

TruthTable tt_of(const std::string& text) {
  Expr e = parse_expression(text);
  return expr_truth_table(e, expr_variables(e));
}

TEST(Expr, ParsesSimpleAnd) {
  Expr e = parse_expression("a*b");
  EXPECT_EQ(e.op, Expr::Op::And);
  ASSERT_EQ(e.operands.size(), 2u);
  EXPECT_EQ(e.operands[0].var, "a");
  EXPECT_EQ(e.operands[1].var, "b");
}

TEST(Expr, PrecedenceAndOverOr) {
  EXPECT_EQ(tt_of("a*b+c"),
            (TruthTable::variable(0, 3) & TruthTable::variable(1, 3)) |
                TruthTable::variable(2, 3));
}

TEST(Expr, ParenthesesOverridePrecedence) {
  EXPECT_EQ(tt_of("a*(b+c)"),
            TruthTable::variable(0, 3) &
                (TruthTable::variable(1, 3) | TruthTable::variable(2, 3)));
}

TEST(Expr, PrefixAndPostfixNegation) {
  EXPECT_EQ(tt_of("!a"), ~TruthTable::variable(0, 1));
  EXPECT_EQ(tt_of("a'"), ~TruthTable::variable(0, 1));
  EXPECT_EQ(tt_of("!(a*b)"),
            ~(TruthTable::variable(0, 2) & TruthTable::variable(1, 2)));
}

TEST(Expr, DoubleNegationCollapses) {
  Expr e = parse_expression("!!a");
  EXPECT_EQ(e.op, Expr::Op::Var);
  EXPECT_EQ(e.var, "a");
}

TEST(Expr, JuxtapositionIsAnd) {
  EXPECT_EQ(tt_of("a b"), tt_of("a*b"));
  EXPECT_EQ(tt_of("a b + c d"), tt_of("a*b + c*d"));
}

TEST(Expr, AlternativeOperators) {
  EXPECT_EQ(tt_of("a&b"), tt_of("a*b"));
  EXPECT_EQ(tt_of("a|b"), tt_of("a+b"));
}

TEST(Expr, Constants) {
  EXPECT_TRUE(tt_of("CONST0").is_const0());
  EXPECT_TRUE(tt_of("CONST1").is_const1());
}

TEST(Expr, NaryFlattening) {
  Expr e = parse_expression("a*b*c*d");
  EXPECT_EQ(e.op, Expr::Op::And);
  EXPECT_EQ(e.operands.size(), 4u);
  Expr o = parse_expression("a+b+c");
  EXPECT_EQ(o.operands.size(), 3u);
}

TEST(Expr, VariablesInFirstOccurrenceOrder) {
  Expr e = parse_expression("c*a + b*a");
  auto vars = expr_variables(e);
  ASSERT_EQ(vars.size(), 3u);
  EXPECT_EQ(vars[0], "c");
  EXPECT_EQ(vars[1], "a");
  EXPECT_EQ(vars[2], "b");
}

TEST(Expr, RepeatedVariableSharedInTruthTable) {
  // XOR written with shared literals: a*!b + !a*b.
  TruthTable x = tt_of("a*!b + !a*b");
  EXPECT_EQ(x, TruthTable::variable(0, 2) ^ TruthTable::variable(1, 2));
}

TEST(Expr, RoundTripThroughToString) {
  for (const char* s :
       {"a*b+c", "!(a*b)", "a*(b+c)", "!(a*(b+c)+d)", "!(!(a*b)*!(c*d))"}) {
    Expr e = parse_expression(s);
    Expr e2 = parse_expression(to_string(e));
    EXPECT_EQ(expr_truth_table(e, expr_variables(e)),
              expr_truth_table(e2, expr_variables(e2)))
        << s;
  }
}

TEST(Expr, SizeCountsNodes) {
  EXPECT_EQ(parse_expression("a").size(), 1u);
  EXPECT_EQ(parse_expression("!a").size(), 2u);
  EXPECT_EQ(parse_expression("a*b").size(), 3u);
}

TEST(Expr, ComplexGateFunction) {
  // AOI22: !(a*b + c*d)
  TruthTable t = tt_of("!(a*b+c*d)");
  TruthTable want = ~((TruthTable::variable(0, 4) & TruthTable::variable(1, 4)) |
                      (TruthTable::variable(2, 4) & TruthTable::variable(3, 4)));
  EXPECT_EQ(t, want);
}

TEST(Expr, ErrorsOnMalformedInput) {
  EXPECT_THROW(parse_expression(""), ParseError);
  EXPECT_THROW(parse_expression("a*"), ParseError);
  EXPECT_THROW(parse_expression("(a+b"), ParseError);
  EXPECT_THROW(parse_expression("a)b"), ParseError);
  EXPECT_THROW(parse_expression("*a"), ParseError);
}

TEST(Expr, BracketedIdentifiers) {
  Expr e = parse_expression("in[3]*data<1>");
  auto vars = expr_variables(e);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], "in[3]");
  EXPECT_EQ(vars[1], "data<1>");
}

}  // namespace
}  // namespace dagmap
