// Unit tests for the BLIF reader/writer.
#include "io/blif.hpp"

#include <gtest/gtest.h>

#include "io/expr.hpp"

namespace dagmap {
namespace {

const char* kFullAdder = R"(
.model fa
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
)";

TEST(Blif, ParsesFullAdder) {
  Network n = parse_blif(kFullAdder);
  EXPECT_EQ(n.name(), "fa");
  EXPECT_EQ(n.num_inputs(), 3u);
  EXPECT_EQ(n.num_outputs(), 2u);
  EXPECT_EQ(n.num_internal(), 2u);
  n.check();
  // sum = a ^ b ^ cin, cout = maj(a,b,cin)
  TruthTable sum = n.local_function(n.outputs()[0].node);
  TruthTable cout = n.local_function(n.outputs()[1].node);
  TruthTable a = TruthTable::variable(0, 3), b = TruthTable::variable(1, 3),
             c = TruthTable::variable(2, 3);
  EXPECT_EQ(sum, a ^ b ^ c);
  EXPECT_EQ(cout, (a & b) | (b & c) | (a & c));
}

TEST(Blif, OffSetCover) {
  Network n = parse_blif(
      ".model m\n.inputs a b\n.outputs o\n.names a b o\n00 0\n.end\n");
  TruthTable f = n.local_function(n.outputs()[0].node);
  EXPECT_EQ(f, TruthTable::variable(0, 2) | TruthTable::variable(1, 2));
}

TEST(Blif, ForwardReferencesResolved) {
  // g is used before it is defined.
  Network n = parse_blif(
      ".model fwd\n.inputs a\n.outputs o\n"
      ".names g o\n0 1\n.names a g\n1 1\n.end\n");
  EXPECT_EQ(n.num_internal(), 2u);
  n.check();
}

TEST(Blif, LatchesBecomeLatchNodes) {
  Network n = parse_blif(
      ".model seq\n.inputs x\n.outputs q\n"
      ".latch d q_int 0\n"
      ".names x q_int d\n11 1\n"
      ".names q_int q\n1 1\n.end\n");
  EXPECT_EQ(n.num_latches(), 1u);
  n.check();
}

TEST(Blif, ConstantNodes) {
  Network n = parse_blif(
      ".model c\n.inputs a\n.outputs o z\n"
      ".names one\n1\n.names zero\n"
      ".names a one o\n11 1\n.names zero z\n1 1\n.end\n");
  n.check();
  EXPECT_EQ(n.count_kind(NodeKind::Const1), 1u);
  EXPECT_EQ(n.count_kind(NodeKind::Const0), 1u);
}

TEST(Blif, LineContinuation) {
  Network n = parse_blif(
      ".model lc\n.inputs a \\\nb\n.outputs o\n.names a b o\n11 1\n.end\n");
  EXPECT_EQ(n.num_inputs(), 2u);
}

TEST(Blif, CommentsStripped) {
  Network n = parse_blif(
      "# top comment\n.model cm # inline\n.inputs a\n.outputs o\n"
      ".names a o # cover follows\n1 1\n.end\n");
  EXPECT_EQ(n.num_inputs(), 1u);
}

TEST(Blif, RoundTripPreservesFunction) {
  Network n = parse_blif(kFullAdder);
  std::string text = write_blif(n);
  Network n2 = parse_blif(text);
  EXPECT_EQ(n2.num_inputs(), n.num_inputs());
  EXPECT_EQ(n2.num_outputs(), n.num_outputs());
  // Functions of the POs must survive the round trip (same PI order).
  for (std::size_t i = 0; i < n.num_outputs(); ++i) {
    EXPECT_EQ(n2.outputs()[i].name, n.outputs()[i].name);
  }
}

TEST(Blif, ErrorsOnMalformedInput) {
  EXPECT_THROW(parse_blif(".model m\n.inputs a\n.outputs o\n.end\n"),
               ParseError);  // undefined output
  EXPECT_THROW(parse_blif(".names a o\n1 1\n"), ParseError);  // undefined a
  EXPECT_THROW(
      parse_blif(".model m\n.inputs a\n.outputs o\n.names a o\n1 1\n"
                 ".names a o\n0 1\n.end\n"),
      ParseError);  // redefinition
  EXPECT_THROW(
      parse_blif(".model m\n.inputs a\n.outputs o\n.subckt foo x=a\n.end\n"),
      ParseError);  // unsupported construct
  EXPECT_THROW(
      parse_blif(".model m\n.inputs a b\n.outputs o\n.names a b o\n1 1\n.end\n"),
      ParseError);  // row width mismatch
  EXPECT_THROW(
      parse_blif(".model m\n.inputs a b\n.outputs o\n.names a b o\n"
                 "11 1\n00 0\n.end\n"),
      ParseError);  // mixed on/off cover
}

TEST(Blif, CycleDetected) {
  EXPECT_THROW(parse_blif(".model cyc\n.inputs a\n.outputs o\n"
                          ".names a x y\n11 1\n.names y x\n1 1\n"
                          ".names x o\n1 1\n.end\n"),
               ParseError);
}

TEST(Blif, DotExportMentionsAllNodes) {
  Network n = parse_blif(kFullAdder);
  std::string dot = write_dot(n);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("sum"), std::string::npos);
  EXPECT_NE(dot.find("cout"), std::string::npos);
}

TEST(Blif, ConstantNodesRoundTrip) {
  // Regression: constants are sources but still need a defining cover
  // in the writer.
  Network n("k");
  NodeId a = n.add_input("a");
  NodeId one = n.add_constant(true);
  NodeId zero = n.add_constant(false);
  n.add_output(n.add_logic({a, one}, TruthTable::from_bits(0b1000, 2)), "o1");
  n.add_output(zero, "o0");
  Network back = parse_blif(write_blif(n));
  back.check();
  EXPECT_EQ(back.num_outputs(), 2u);
  // o0 must be constant 0, o1 = a.
  std::vector<std::uint64_t> in{0b01};
  // (validated through the equivalence checker in the suite round-trip
  // test in tests/integration; here just structure)
}

TEST(Blif, SubjectGraphRoundTrip) {
  Network n("sg");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId g = n.add_nand2(a, b);
  NodeId h = n.add_inv(g);
  n.add_output(h, "o");
  Network n2 = parse_blif(write_blif(n));
  n2.check();
  EXPECT_EQ(n2.num_internal(), 2u);
  // AND of two inputs after NAND+INV.
  TruthTable f = n2.local_function(n2.outputs()[0].node);
  EXPECT_EQ(f.num_vars(), 1u);  // the INV-equivalent logic node
}

}  // namespace
}  // namespace dagmap
