// Unit tests for the GENLIB reader/writer.
#include "io/genlib.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <locale>

#include "io/number.hpp"

namespace dagmap {
namespace {

const char* kSmallLib = R"(
# a tiny library
GATE inv 1.0 O=!a;
  PIN a INV 1 999 1.0 0.2 1.0 0.2
GATE nand2 2.0 O=!(a*b);
  PIN * INV 1 999 1.5 0.2 1.5 0.2
GATE aoi21 3.0 O=!(a*b+c);
  PIN a INV 1 999 2.1 0.3 2.0 0.3
  PIN b INV 1 999 2.1 0.3 2.0 0.3
  PIN c INV 1 999 1.6 0.3 1.6 0.3
)";

TEST(Genlib, ParsesGatesAndPins) {
  auto gates = parse_genlib(kSmallLib);
  ASSERT_EQ(gates.size(), 3u);
  EXPECT_EQ(gates[0].name, "inv");
  EXPECT_DOUBLE_EQ(gates[0].area, 1.0);
  EXPECT_EQ(gates[0].output_name, "O");
  EXPECT_EQ(gates[0].pins.size(), 1u);
  EXPECT_EQ(gates[1].pins[0].name, "*");
  EXPECT_DOUBLE_EQ(gates[1].pins[0].rise_block, 1.5);
  EXPECT_EQ(gates[2].pins.size(), 3u);
  EXPECT_DOUBLE_EQ(gates[2].pins[2].rise_block, 1.6);
}

TEST(Genlib, FunctionParsesToExpectedTruthTable) {
  auto gates = parse_genlib(kSmallLib);
  const Expr& aoi = gates[2].function;
  auto vars = expr_variables(aoi);
  ASSERT_EQ(vars.size(), 3u);
  TruthTable t = expr_truth_table(aoi, vars);
  TruthTable want = ~((TruthTable::variable(0, 3) & TruthTable::variable(1, 3)) |
                      TruthTable::variable(2, 3));
  EXPECT_EQ(t, want);
}

TEST(Genlib, RoundTripsThroughWriter) {
  auto gates = parse_genlib(kSmallLib);
  std::string text = write_genlib(gates);
  auto gates2 = parse_genlib(text);
  ASSERT_EQ(gates2.size(), gates.size());
  for (std::size_t i = 0; i < gates.size(); ++i) {
    EXPECT_EQ(gates2[i].name, gates[i].name);
    EXPECT_DOUBLE_EQ(gates2[i].area, gates[i].area);
    ASSERT_EQ(gates2[i].pins.size(), gates[i].pins.size());
    for (std::size_t p = 0; p < gates[i].pins.size(); ++p) {
      EXPECT_EQ(gates2[i].pins[p].name, gates[i].pins[p].name);
      EXPECT_DOUBLE_EQ(gates2[i].pins[p].rise_block,
                       gates[i].pins[p].rise_block);
    }
    auto v1 = expr_variables(gates[i].function);
    auto v2 = expr_variables(gates2[i].function);
    EXPECT_EQ(expr_truth_table(gates[i].function, v1),
              expr_truth_table(gates2[i].function, v2));
  }
}

TEST(Genlib, FunctionMaySpanSpaces) {
  auto gates = parse_genlib("GATE or2 2 O = a + b;\n PIN * NONINV 1 999 1 0 1 0\n");
  ASSERT_EQ(gates.size(), 1u);
  auto vars = expr_variables(gates[0].function);
  EXPECT_EQ(expr_truth_table(gates[0].function, vars),
            TruthTable::variable(0, 2) | TruthTable::variable(1, 2));
}

TEST(Genlib, CommentsIgnoredAnywhere) {
  auto gates = parse_genlib(
      "# header\nGATE buf 1 O=a; # trailing\n PIN a NONINV 1 999 1 0 1 0\n");
  ASSERT_EQ(gates.size(), 1u);
}

TEST(Genlib, ErrorsOnMalformedFiles) {
  EXPECT_THROW(parse_genlib("PIN a INV 1 999 1 0 1 0\n"), ParseError);
  EXPECT_THROW(parse_genlib("GATE x 1 O=a\n"), ParseError);  // missing ';'
  EXPECT_THROW(parse_genlib("GATE x 1 a;\n"), ParseError);   // missing '='
  EXPECT_THROW(parse_genlib("FROB x\n"), ParseError);
  EXPECT_THROW(parse_genlib("GATE x notanumber O=a;\n"), ParseError);
  EXPECT_THROW(
      parse_genlib("GATE x 1 O=a;\n PIN a SIDEWAYS 1 999 1 0 1 0\n"),
      ParseError);
}

TEST(Genlib, ConstantGates) {
  auto gates = parse_genlib("GATE zero 0 O=CONST0;\nGATE one 0 O=CONST1;\n");
  ASSERT_EQ(gates.size(), 2u);
  EXPECT_EQ(gates[0].function.op, Expr::Op::Const0);
  EXPECT_EQ(gates[1].function.op, Expr::Op::Const1);
}

// A numpunct facet with ',' as the decimal point — what a de_DE-style
// locale installs.  Injected directly so the test does not depend on
// which locales the host has generated.
struct CommaDecimal : std::numpunct<char> {
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

// RAII: installs a comma-decimal locale globally (both the C++ global
// locale and, when the host has one, the C locale that stod/strtod
// honor) and restores the previous state on destruction.
class CommaLocaleGuard {
 public:
  CommaLocaleGuard()
      : cxx_previous_(std::locale::global(
            std::locale(std::locale::classic(), new CommaDecimal))) {
    for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "de_DE"}) {
      if (std::setlocale(LC_NUMERIC, name) != nullptr) {
        c_changed_ = true;
        break;
      }
    }
  }
  ~CommaLocaleGuard() {
    std::locale::global(cxx_previous_);
    if (c_changed_) std::setlocale(LC_NUMERIC, "C");
  }

 private:
  std::locale cxx_previous_;
  bool c_changed_ = false;
};

TEST(Genlib, ParsesDotDecimalsUnderCommaLocale) {
  // Regression: parse_double used std::stod, which honors the C numeric
  // locale — under a comma-decimal locale "1.5" parsed as 1 (and the
  // locale-aware stream fallback would accept "1,5").  GENLIB numbers
  // are '.'-formatted by definition, whatever the process locale.
  CommaLocaleGuard guard;
  auto gates = parse_genlib(kSmallLib);
  ASSERT_EQ(gates.size(), 3u);
  EXPECT_DOUBLE_EQ(gates[1].pins[0].rise_block, 1.5);
  EXPECT_DOUBLE_EQ(gates[2].pins[2].rise_block, 1.6);
  EXPECT_DOUBLE_EQ(gates[2].area, 3.0);
}

TEST(Genlib, WriterEmitsDotDecimalsUnderCommaLocale) {
  CommaLocaleGuard guard;
  auto gates = parse_genlib(kSmallLib);
  std::string text = write_genlib(gates);
  EXPECT_NE(text.find("1.5"), std::string::npos);
  EXPECT_EQ(text.find("1,5"), std::string::npos);
  // And the round trip still agrees under the hostile locale.
  auto again = parse_genlib(text);
  ASSERT_EQ(again.size(), gates.size());
  EXPECT_DOUBLE_EQ(again[1].pins[0].rise_block, 1.5);
}

TEST(Genlib, ParseDoubleStrictRejectsGarbage) {
  EXPECT_EQ(parse_double_strict("1.5").value(), 1.5);
  EXPECT_EQ(parse_double_strict("+2").value(), 2.0);
  EXPECT_EQ(parse_double_strict("-0.25").value(), -0.25);
  EXPECT_EQ(parse_double_strict("1e3").value(), 1000.0);
  EXPECT_FALSE(parse_double_strict("").has_value());
  EXPECT_FALSE(parse_double_strict("abc").has_value());
  EXPECT_FALSE(parse_double_strict("1.5x").has_value());
  EXPECT_FALSE(parse_double_strict("1,5").has_value());
}

}  // namespace
}  // namespace dagmap
