// Tests for bit-parallel simulation and equivalence checking.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "netlist/assert.hpp"

namespace dagmap {
namespace {

Network and_net() {
  Network n("and");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  n.add_output(n.add_and(a, b), "o");
  return n;
}

Network and_via_nand() {
  Network n("and2");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  n.add_output(n.add_inv(n.add_nand2(a, b)), "o");
  return n;
}

TEST(Simulator, WordSimulationOfPrimitives) {
  Network n("prims");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId g = n.add_nand2(a, b);
  NodeId h = n.add_inv(g);
  NodeId x = n.add_xor(a, b);
  n.add_output(g, "nand");
  n.add_output(h, "and");
  n.add_output(x, "xor");
  std::vector<std::uint64_t> in{0b0101, 0b0011};
  auto out = simulate64(n, in);
  EXPECT_EQ(out[0] & 0xF, 0b1110u);
  EXPECT_EQ(out[1] & 0xF, 0b0001u);
  EXPECT_EQ(out[2] & 0xF, 0b0110u);
}

TEST(Simulator, ConstantsSimulate) {
  Network n("c");
  NodeId a = n.add_input("a");
  NodeId c1 = n.add_constant(true);
  n.add_output(n.add_and(a, c1), "o");
  std::vector<std::uint64_t> in{0xDEADBEEF};
  auto out = simulate64(n, in);
  EXPECT_EQ(out[0], 0xDEADBEEFull);
}

TEST(Simulator, LatchesAreSourcesAndDIsOutput) {
  Network n("seq");
  NodeId x = n.add_input("x");
  NodeId l = n.add_latch_placeholder("s");
  NodeId d = n.add_xor(x, l);
  n.connect_latch(l, d);
  n.add_output(l, "q");
  std::vector<std::uint64_t> in{0b0101, 0b0011};  // x, latch-out
  auto out = simulate64(n, in);
  EXPECT_EQ(out[0] & 0xF, 0b0011u);  // PO = latch output directly
  EXPECT_EQ(out[1] & 0xF, 0b0110u);  // latch D = x ^ s
}

TEST(Simulator, EquivalentNetworksPass) {
  auto r = check_equivalence(and_net(), and_via_nand());
  EXPECT_TRUE(r.equivalent);
}

TEST(Simulator, InequivalentNetworksCaught) {
  Network n("or");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  n.add_output(n.add_or(a, b), "o");
  auto r = check_equivalence(and_net(), n);
  EXPECT_FALSE(r.equivalent);
  // Counterexample must actually distinguish AND from OR: exactly one of
  // a, b set.
  EXPECT_NE(r.source_bit(0), r.source_bit(1));
}

TEST(Simulator, InterfaceMismatchRejected) {
  Network n("one_pi");
  NodeId a = n.add_input("a");
  n.add_output(a, "o");
  EXPECT_THROW((void)check_equivalence(and_net(), n), ContractError);
}

TEST(Simulator, RandomModeFindsDifferences) {
  // 20 inputs forces random mode; difference is on a single AND path.
  Network n1("big1"), n2("big2");
  std::vector<NodeId> in1, in2;
  for (int i = 0; i < 20; ++i) {
    in1.push_back(n1.add_input("i" + std::to_string(i)));
    in2.push_back(n2.add_input("i" + std::to_string(i)));
  }
  NodeId x1 = n1.add_xor(in1[0], in1[1]);
  NodeId x2 = n2.add_xor(in2[0], in2[1]);
  for (int i = 2; i < 20; ++i) {
    x1 = n1.add_xor(x1, in1[i]);
    x2 = n2.add_xor(x2, in2[i]);
  }
  n1.add_output(x1, "o");
  n2.add_output(n2.add_inv(x2), "o");
  auto r = check_equivalence(n1, n2);
  EXPECT_FALSE(r.equivalent);
}

TEST(Simulator, OutputTruthTableMatchesLocalFunction) {
  Network n("maj");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId c = n.add_input("c");
  n.add_output(n.add_maj3(a, b, c), "o");
  TruthTable t = output_truth_table(n, 0);
  EXPECT_EQ(t.to_hex(), "e8");
}

TEST(Simulator, OutputTruthTableWideNetwork) {
  // 8-input parity via a chain.
  Network n("par");
  std::vector<NodeId> ins;
  for (int i = 0; i < 8; ++i)
    ins.push_back(n.add_input("i" + std::to_string(i)));
  NodeId x = ins[0];
  for (int i = 1; i < 8; ++i) x = n.add_xor(x, ins[i]);
  n.add_output(x, "o");
  TruthTable t = output_truth_table(n, 0);
  for (std::size_t m = 0; m < t.num_minterms(); ++m)
    EXPECT_EQ(t.bit(m), (std::popcount(m) & 1) == 1);
}

TEST(Simulator, ExhaustiveEquivalenceIsExact) {
  // Two networks differing on exactly one input assignment.
  Network n1("n1"), n2("n2");
  std::vector<NodeId> i1, i2;
  for (int i = 0; i < 8; ++i) {
    i1.push_back(n1.add_input("i" + std::to_string(i)));
    i2.push_back(n2.add_input("i" + std::to_string(i)));
  }
  // n1: AND of all inputs.  n2: constant 0.  They differ only on all-ones.
  n1.add_output(n1.add_and(std::span<const NodeId>(i1)), "o");
  n2.add_output(n2.add_constant(false), "o");
  auto r = check_equivalence(n1, n2);
  EXPECT_FALSE(r.equivalent);
  ASSERT_EQ(r.counterexample.size(), 1u);
  EXPECT_EQ(r.counterexample[0], 0xFFull);
  EXPECT_EQ(r.counterexample_hex(), "0xff");
}

TEST(Simulator, CounterexampleBeyond64Sources) {
  // 70 sources: a = XOR of all 70 inputs, b = XOR of the first 69.  They
  // differ whenever input 69 is set, so random mode finds a difference in
  // the first round — and the counterexample must carry source indices
  // past the first word without truncation.
  Network n1("wide1"), n2("wide2");
  std::vector<NodeId> i1, i2;
  for (int i = 0; i < 70; ++i) {
    i1.push_back(n1.add_input("i" + std::to_string(i)));
    i2.push_back(n2.add_input("i" + std::to_string(i)));
  }
  NodeId x1 = i1[0], x2 = i2[0];
  for (int i = 1; i < 70; ++i) x1 = n1.add_xor(x1, i1[i]);
  for (int i = 1; i < 69; ++i) x2 = n2.add_xor(x2, i2[i]);
  n1.add_output(x1, "o");
  n2.add_output(x2, "o");

  auto r = check_equivalence(n1, n2);
  ASSERT_FALSE(r.equivalent);
  ASSERT_EQ(r.counterexample.size(), 2u);  // ceil(70 / 64) words
  EXPECT_TRUE(r.source_bit(69));           // only bit 69 distinguishes them

  // Replay the reported assignment single-lane: the outputs must really
  // differ under it.
  std::vector<std::uint64_t> words(70);
  for (int s = 0; s < 70; ++s) words[s] = r.source_bit(s) ? 1 : 0;
  auto o1 = simulate64(n1, words);
  auto o2 = simulate64(n2, words);
  EXPECT_NE(o1[r.failing_output] & 1, o2[r.failing_output] & 1);
}

}  // namespace
}  // namespace dagmap
