// Tests for the baseline tree mapper.
#include "treemap/tree_mapper.hpp"

#include <gtest/gtest.h>

#include "decomp/tech_decomp.hpp"
#include "library/standard_libs.hpp"
#include "sim/simulator.hpp"
#include "timing/timing.hpp"

namespace dagmap {
namespace {

Network adder_bit_subject() {
  Network n("fa");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId cin = n.add_input("cin");
  n.add_output(n.add_xor(n.add_xor(a, b), cin), "sum");
  n.add_output(n.add_maj3(a, b, cin), "cout");
  return tech_decompose(n);
}

TEST(TreeMapper, CorrectAndConsistent) {
  Network sg = adder_bit_subject();
  GateLibrary lib = make_lib2_library();
  MapResult r = tree_map(sg, lib);
  r.netlist.check();
  EXPECT_TRUE(check_equivalence(sg, r.netlist.to_network()).equivalent);
  EXPECT_NEAR(circuit_delay(r.netlist), r.optimal_delay, 1e-9);
}

TEST(TreeMapper, NoDuplicationEver) {
  // Tree covering creates at most one gate instance per subject node:
  // mapped gate count <= subject internal nodes.
  Network sg = adder_bit_subject();
  GateLibrary lib = make_lib2_library();
  MapResult r = tree_map(sg, lib);
  EXPECT_LE(r.netlist.num_gates(), sg.num_internal());
}

TEST(TreeMapper, MultiFanoutPointsPreserved) {
  // The subject's multi-fanout NAND must appear as a gate output in the
  // mapped circuit (tree boundaries survive).
  GateLibrary lib = make_lib2_library();
  Network sg("fan");
  NodeId a = sg.add_input("a");
  NodeId b = sg.add_input("b");
  NodeId c = sg.add_input("c");
  NodeId d = sg.add_input("d");
  NodeId mid = sg.add_nand2(a, b);
  sg.add_output(sg.add_nand2(mid, c), "o1");
  sg.add_output(sg.add_nand2(mid, d), "o2");
  MapResult r = tree_map(sg, lib);
  // mid mapped exactly once; total three nand2 gates.
  EXPECT_EQ(r.netlist.num_gates(), 3u);
  EXPECT_TRUE(check_equivalence(sg, r.netlist.to_network()).equivalent);
}

TEST(TreeMapper, AreaModeNotWorseThanDelayModeInArea) {
  Network sg = adder_bit_subject();
  GateLibrary lib = make_lib2_library();
  TreeMapOptions delay_opt, area_opt;
  area_opt.objective = TreeMapObjective::Area;
  MapResult rd = tree_map(sg, lib, delay_opt);
  MapResult ra = tree_map(sg, lib, area_opt);
  EXPECT_LE(ra.netlist.total_area(), rd.netlist.total_area() + 1e-9);
  EXPECT_TRUE(check_equivalence(sg, ra.netlist.to_network()).equivalent);
}

TEST(TreeMapper, AreaModeOptimalOnSingleTree) {
  // Single tree: INV(NAND(a,b)) — and2 (area 3) vs nand2+inv (area 3):
  // equal areas, either is optimal; check the DP picks area 3.
  GateLibrary lib = make_lib2_library();
  Network sg("tree");
  NodeId a = sg.add_input("a");
  NodeId b = sg.add_input("b");
  sg.add_output(sg.add_inv(sg.add_nand2(a, b)), "o");
  TreeMapOptions opt;
  opt.objective = TreeMapObjective::Area;
  MapResult r = tree_map(sg, lib, opt);
  EXPECT_NEAR(r.netlist.total_area(), 3.0, 1e-9);
}

TEST(TreeMapper, WorksWithMinimalLibrary) {
  Network sg = adder_bit_subject();
  GateLibrary lib = make_minimal_library();
  MapResult r = tree_map(sg, lib);
  // Minimal library: every subject node becomes its own gate.
  EXPECT_EQ(r.netlist.num_gates(), sg.num_internal());
  EXPECT_TRUE(check_equivalence(sg, r.netlist.to_network()).equivalent);
}

TEST(TreeMapper, XorGateUsedOnXorTree) {
  // A pure two-input XOR cone (single tree) should map to the xor2 gate
  // when its NAND structure matches the library pattern.
  GateLibrary lib = make_lib2_library();
  Network src("x");
  NodeId a = src.add_input("a");
  NodeId b = src.add_input("b");
  src.add_output(src.add_xor(a, b), "o");
  Network sg = tech_decompose(src);
  MapResult r = tree_map(sg, lib);
  auto hist = r.netlist.gate_histogram();
  EXPECT_EQ(hist.count("xor2"), 1u);
  EXPECT_EQ(r.netlist.num_gates(), 1u);
}

}  // namespace
}  // namespace dagmap
