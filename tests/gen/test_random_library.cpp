// make_random_genlib must produce *valid* GENLIB: parseable, complete for
// mapping, and stable under a parse -> write -> parse round trip.  These
// are the preconditions the fuzz harness relies on when it writes a
// generated library next to a shrunk BLIF as a repro.
#include <gtest/gtest.h>

#include "gen/libraries.hpp"
#include "io/genlib.hpp"
#include "library/gate_library.hpp"

namespace dagmap {
namespace {

TEST(RandomLibrary, EveryGeneratedLibraryRoundTripsThroughTheParser) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    unsigned n_gates = 2 + static_cast<unsigned>(seed % 12);
    unsigned max_inputs = 1 + static_cast<unsigned>(seed % 5);
    std::string text = make_random_genlib(seed, n_gates, max_inputs);

    std::vector<GenlibGate> parsed = parse_genlib(text);
    ASSERT_EQ(parsed.size(), n_gates) << "seed " << seed;

    std::vector<GenlibGate> reparsed = parse_genlib(write_genlib(parsed));
    ASSERT_EQ(reparsed.size(), parsed.size()) << "seed " << seed;
    for (std::size_t g = 0; g < parsed.size(); ++g) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " gate " +
                   parsed[g].name);
      EXPECT_EQ(reparsed[g].name, parsed[g].name);
      EXPECT_EQ(reparsed[g].area, parsed[g].area);
      EXPECT_EQ(to_string(reparsed[g].function), to_string(parsed[g].function));
      ASSERT_EQ(reparsed[g].pins.size(), parsed[g].pins.size());
      for (std::size_t p = 0; p < parsed[g].pins.size(); ++p) {
        EXPECT_EQ(reparsed[g].pins[p].name, parsed[g].pins[p].name);
        EXPECT_EQ(reparsed[g].pins[p].rise_block, parsed[g].pins[p].rise_block);
        EXPECT_EQ(reparsed[g].pins[p].fall_block, parsed[g].pins[p].fall_block);
      }
    }
  }
}

TEST(RandomLibrary, AlwaysCompleteForMapping) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    GateLibrary lib = make_random_library(seed, 8, 4);
    EXPECT_TRUE(lib.is_complete_for_mapping()) << "seed " << seed;
    EXPECT_EQ(lib.size(), 8u);
    // Non-buffer gates must have matchable patterns; area/delay populated.
    for (const Gate& g : lib.gates()) {
      EXPECT_GT(g.area, 0.0) << g.name;
      EXPECT_GT(g.max_pin_delay(), 0.0) << g.name;
      if (!g.is_buffer()) {
        EXPECT_FALSE(g.patterns.empty()) << g.name;
      }
    }
  }
}

TEST(RandomLibrary, DeterministicInSeed) {
  EXPECT_EQ(make_random_genlib(42, 10, 4), make_random_genlib(42, 10, 4));
  EXPECT_NE(make_random_genlib(42, 10, 4), make_random_genlib(43, 10, 4));
}

TEST(RandomLibrary, MultiLevelLibrariesRoundTripAndStayValid) {
  // The multi_level generator emits non-read-once functions; every
  // invariant of the read-once stream must still hold: parseable,
  // write -> parse fixpoint, complete for mapping, no vacuous pins.
  bool saw_multi_level = false;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    std::string text = make_random_genlib(seed, 8, 4, /*multi_level=*/true);
    std::vector<GenlibGate> parsed = parse_genlib(text);
    ASSERT_EQ(parsed.size(), 8u) << "seed " << seed;
    EXPECT_EQ(write_genlib(parse_genlib(write_genlib(parsed))),
              write_genlib(parsed))
        << "seed " << seed;

    GateLibrary lib =
        GateLibrary::from_genlib(parsed, "ml-" + std::to_string(seed));
    EXPECT_TRUE(lib.is_complete_for_mapping()) << "seed " << seed;
    for (std::size_t g = 0; g < parsed.size(); ++g) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " gate " +
                   parsed[g].name);
      // Multi-level means a variable is read more than once.
      std::string body = to_string(parsed[g].function);
      for (const std::string& v : expr_variables(parsed[g].function)) {
        std::size_t uses = 0;
        for (std::size_t at = body.find(v); at != std::string::npos;
             at = body.find(v, at + 1))
          ++uses;
        saw_multi_level |= uses > 1;
      }
      if (!lib.gates()[g].is_buffer()) {
        EXPECT_FALSE(lib.gates()[g].patterns.empty());
      }
    }
  }
  EXPECT_TRUE(saw_multi_level)
      << "no generated gate read a variable twice across 30 seeds";
}

TEST(RandomLibrary, MultiLevelOffPreservesHistoricalStream) {
  EXPECT_EQ(make_random_genlib(42, 10, 4, false),
            make_random_genlib(42, 10, 4));
  EXPECT_EQ(make_random_genlib(7, 10, 4, true),
            make_random_genlib(7, 10, 4, true));
  EXPECT_NE(make_random_genlib(7, 10, 4, true),
            make_random_genlib(7, 10, 4, false));
}

}  // namespace
}  // namespace dagmap
