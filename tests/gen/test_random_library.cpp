// make_random_genlib must produce *valid* GENLIB: parseable, complete for
// mapping, and stable under a parse -> write -> parse round trip.  These
// are the preconditions the fuzz harness relies on when it writes a
// generated library next to a shrunk BLIF as a repro.
#include <gtest/gtest.h>

#include "gen/libraries.hpp"
#include "io/genlib.hpp"
#include "library/gate_library.hpp"

namespace dagmap {
namespace {

TEST(RandomLibrary, EveryGeneratedLibraryRoundTripsThroughTheParser) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    unsigned n_gates = 2 + static_cast<unsigned>(seed % 12);
    unsigned max_inputs = 1 + static_cast<unsigned>(seed % 5);
    std::string text = make_random_genlib(seed, n_gates, max_inputs);

    std::vector<GenlibGate> parsed = parse_genlib(text);
    ASSERT_EQ(parsed.size(), n_gates) << "seed " << seed;

    std::vector<GenlibGate> reparsed = parse_genlib(write_genlib(parsed));
    ASSERT_EQ(reparsed.size(), parsed.size()) << "seed " << seed;
    for (std::size_t g = 0; g < parsed.size(); ++g) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " gate " +
                   parsed[g].name);
      EXPECT_EQ(reparsed[g].name, parsed[g].name);
      EXPECT_EQ(reparsed[g].area, parsed[g].area);
      EXPECT_EQ(to_string(reparsed[g].function), to_string(parsed[g].function));
      ASSERT_EQ(reparsed[g].pins.size(), parsed[g].pins.size());
      for (std::size_t p = 0; p < parsed[g].pins.size(); ++p) {
        EXPECT_EQ(reparsed[g].pins[p].name, parsed[g].pins[p].name);
        EXPECT_EQ(reparsed[g].pins[p].rise_block, parsed[g].pins[p].rise_block);
        EXPECT_EQ(reparsed[g].pins[p].fall_block, parsed[g].pins[p].fall_block);
      }
    }
  }
}

TEST(RandomLibrary, AlwaysCompleteForMapping) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    GateLibrary lib = make_random_library(seed, 8, 4);
    EXPECT_TRUE(lib.is_complete_for_mapping()) << "seed " << seed;
    EXPECT_EQ(lib.size(), 8u);
    // Non-buffer gates must have matchable patterns; area/delay populated.
    for (const Gate& g : lib.gates()) {
      EXPECT_GT(g.area, 0.0) << g.name;
      EXPECT_GT(g.max_pin_delay(), 0.0) << g.name;
      if (!g.is_buffer()) {
        EXPECT_FALSE(g.patterns.empty()) << g.name;
      }
    }
  }
}

TEST(RandomLibrary, DeterministicInSeed) {
  EXPECT_EQ(make_random_genlib(42, 10, 4), make_random_genlib(42, 10, 4));
  EXPECT_NE(make_random_genlib(42, 10, 4), make_random_genlib(43, 10, 4));
}

}  // namespace
}  // namespace dagmap
