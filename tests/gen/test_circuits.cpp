// Functional tests for the benchmark circuit generators: each arithmetic
// generator is simulated against integer arithmetic.
#include "gen/circuits.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace dagmap {
namespace {

// Evaluates the network on one scalar input assignment: `values[i]`
// drives PI i.  Returns PO bits.
std::vector<bool> eval(const Network& n, const std::vector<bool>& values) {
  std::vector<std::uint64_t> words(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    words[i] = values[i] ? ~std::uint64_t{0} : 0;
  auto out = simulate64(n, words);
  std::vector<bool> bits(n.num_outputs());
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = out[i] & 1;
  return bits;
}

std::uint64_t bits_to_int(const std::vector<bool>& bits, std::size_t from,
                          std::size_t count) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < count; ++i)
    if (bits[from + i]) v |= std::uint64_t{1} << i;
  return v;
}

std::vector<bool> int_to_bits(std::uint64_t v, unsigned count) {
  std::vector<bool> bits(count);
  for (unsigned i = 0; i < count; ++i) bits[i] = (v >> i) & 1;
  return bits;
}

class AdderParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(AdderParam, RippleCarryAddsCorrectly) {
  unsigned bits = GetParam();
  Network n = make_ripple_carry_adder(bits);
  n.check();
  std::uint64_t mask = (bits == 64) ? ~0ull : ((1ull << bits) - 1);
  std::uint64_t state = 12345 + bits;
  for (int trial = 0; trial < 30; ++trial) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t a = (state >> 10) & mask;
    std::uint64_t b = (state >> 30) & mask;
    bool cin = state & 1;
    std::vector<bool> in = int_to_bits(a, bits);
    auto bb = int_to_bits(b, bits);
    in.insert(in.end(), bb.begin(), bb.end());
    in.push_back(cin);
    auto out = eval(n, in);
    std::uint64_t sum = bits_to_int(out, 0, bits);
    bool cout = out[bits];
    std::uint64_t want = a + b + cin;
    EXPECT_EQ(sum, want & mask);
    EXPECT_EQ(cout, (want >> bits) & 1);
  }
}

TEST_P(AdderParam, CarryLookaheadMatchesRipple) {
  unsigned bits = GetParam();
  Network cla = make_carry_lookahead_adder(bits);
  Network rca = make_ripple_carry_adder(bits);
  cla.check();
  EXPECT_TRUE(check_equivalence(cla, rca).equivalent) << bits;
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderParam,
                         ::testing::Values(1u, 3u, 4u, 5u, 8u, 13u, 16u));

class MultParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(MultParam, ArrayMultiplierMultipliesCorrectly) {
  unsigned bits = GetParam();
  Network n = make_array_multiplier(bits);
  n.check();
  EXPECT_EQ(n.num_outputs(), 2 * bits);
  std::uint64_t mask = (1ull << bits) - 1;
  std::uint64_t state = 777 + bits;
  for (int trial = 0; trial < 40; ++trial) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t a = (state >> 7) & mask;
    std::uint64_t b = (state >> 33) & mask;
    std::vector<bool> in = int_to_bits(a, bits);
    auto bb = int_to_bits(b, bits);
    in.insert(in.end(), bb.begin(), bb.end());
    auto out = eval(n, in);
    EXPECT_EQ(bits_to_int(out, 0, 2 * bits), a * b)
        << bits << "-bit " << a << "*" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MultParam,
                         ::testing::Values(2u, 3u, 4u, 6u, 8u, 16u));

TEST(Circuits, AluComputesAllOps) {
  unsigned bits = 8;
  Network n = make_alu(bits);
  n.check();
  std::uint64_t mask = (1ull << bits) - 1;
  std::uint64_t state = 99;
  for (int trial = 0; trial < 20; ++trial) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t a = (state >> 5) & mask;
    std::uint64_t b = (state >> 25) & mask;
    for (unsigned op = 0; op < 4; ++op) {
      std::vector<bool> in = int_to_bits(a, bits);
      auto bb = int_to_bits(b, bits);
      in.insert(in.end(), bb.begin(), bb.end());
      in.push_back(op & 1);         // op0
      in.push_back((op >> 1) & 1);  // op1
      in.push_back(false);          // cin
      auto out = eval(n, in);
      std::uint64_t y = bits_to_int(out, 0, bits);
      std::uint64_t want = op == 0   ? (a + b) & mask
                           : op == 1 ? (a & b)
                           : op == 2 ? (a | b)
                                     : (a ^ b);
      EXPECT_EQ(y, want) << "op=" << op;
    }
  }
}

TEST(Circuits, ParityTree) {
  Network n = make_parity_tree(16);
  for (std::uint64_t v : {0ull, 1ull, 0xFFFFull, 0xA5C3ull, 0x8001ull}) {
    auto out = eval(n, int_to_bits(v, 16));
    EXPECT_EQ(out[0], (std::popcount(v) & 1) == 1) << v;
  }
}

TEST(Circuits, Comparator) {
  Network n = make_comparator(8);
  std::uint64_t state = 5;
  for (int trial = 0; trial < 40; ++trial) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t a = (state >> 8) & 0xFF;
    std::uint64_t b = (state >> 40) & 0xFF;
    std::vector<bool> in = int_to_bits(a, 8);
    auto bb = int_to_bits(b, 8);
    in.insert(in.end(), bb.begin(), bb.end());
    auto out = eval(n, in);
    EXPECT_EQ(out[0], a < b);
    EXPECT_EQ(out[1], a == b);
    EXPECT_EQ(out[2], a > b);
  }
}

TEST(Circuits, PriorityEncoder) {
  Network n = make_priority_encoder(8);
  for (unsigned v = 0; v < 256; ++v) {
    auto out = eval(n, int_to_bits(v, 8));
    bool valid = out.back();
    EXPECT_EQ(valid, v != 0);
    if (v) {
      unsigned expect = 31 - std::countl_zero(std::uint32_t{v});
      unsigned got = static_cast<unsigned>(bits_to_int(out, 0, 3));
      EXPECT_EQ(got, expect) << v;
    }
  }
}

TEST(Circuits, Decoder) {
  Network n = make_decoder(4);
  n.check();
  EXPECT_EQ(n.num_outputs(), 16u);
  for (unsigned addr = 0; addr < 16; ++addr) {
    auto out = eval(n, int_to_bits(addr, 4));
    for (unsigned j = 0; j < 16; ++j)
      EXPECT_EQ(out[j], j == addr) << "addr=" << addr << " j=" << j;
  }
}

TEST(Circuits, BarrelShifter) {
  Network n = make_barrel_shifter(8);
  n.check();
  std::uint64_t state = 17;
  for (int trial = 0; trial < 30; ++trial) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t data = state & 0xFF;
    unsigned amount = (state >> 20) & 7;
    std::vector<bool> in = int_to_bits(data, 8);
    auto sb = int_to_bits(amount, 3);
    in.insert(in.end(), sb.begin(), sb.end());
    auto out = eval(n, in);
    EXPECT_EQ(bits_to_int(out, 0, 8), (data << amount) & 0xFF)
        << data << "<<" << amount;
  }
}

TEST(Circuits, MuxTree) {
  Network n = make_mux_tree(3);
  std::uint64_t state = 31;
  for (int trial = 0; trial < 30; ++trial) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t data = state & 0xFF;
    unsigned sel = (state >> 20) & 7;
    std::vector<bool> in = int_to_bits(data, 8);
    auto sb = int_to_bits(sel, 3);
    in.insert(in.end(), sb.begin(), sb.end());
    auto out = eval(n, in);
    EXPECT_EQ(out[0], (data >> sel) & 1) << "sel=" << sel;
  }
}

TEST(Circuits, HammingDecoderCorrectsSingleErrors) {
  unsigned data_bits = 8;
  Network n = make_hamming_decoder(data_bits);
  n.check();
  unsigned p = 2;
  while ((1u << p) < data_bits + p + 1) ++p;
  unsigned len = data_bits + p;

  // Software Hamming encoder: place data at non-power-of-2 positions,
  // then set parity bits so each syndrome bit is even.
  auto encode = [&](std::uint64_t data) {
    std::vector<bool> code(len + 1, false);
    unsigned di = 0;
    for (unsigned i = 1; i <= len; ++i)
      if ((i & (i - 1)) != 0) code[i] = (data >> di++) & 1;
    for (unsigned k = 0; k < p; ++k) {
      bool parity = false;
      for (unsigned i = 1; i <= len; ++i)
        if (((i >> k) & 1) && (i & (i - 1)) != 0) parity ^= code[i];
      code[1u << k] = parity;
    }
    return code;
  };

  std::uint64_t state = 321;
  for (int trial = 0; trial < 20; ++trial) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t data = (state >> 13) & ((1u << data_bits) - 1);
    for (unsigned flip = 0; flip <= len; ++flip) {  // 0 = no error
      auto code = encode(data);
      if (flip) code[flip] = !code[flip];
      std::vector<bool> in(code.begin() + 1, code.end());
      auto out = eval(n, in);
      EXPECT_EQ(out[0], flip != 0) << "error flag, flip=" << flip;
      // Corrected data must equal the original regardless of the flip.
      std::uint64_t got = 0;
      unsigned di = 0, oi = 1;
      for (unsigned i = 1; i <= len; ++i) {
        if ((i & (i - 1)) == 0) continue;
        if (out[oi++]) got |= 1ull << di;
        ++di;
      }
      EXPECT_EQ(got, data) << "flip=" << flip;
    }
  }
}

TEST(Circuits, InterruptControllerGrantsHighestEnabled) {
  Network n = make_interrupt_controller(8);
  n.check();
  std::uint64_t state = 55;
  for (int trial = 0; trial < 40; ++trial) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    unsigned req = state & 0xFF;
    unsigned en = (state >> 20) & 0xFF;
    bool master = (state >> 40) & 1;
    std::vector<bool> in = int_to_bits(req, 8);
    auto eb = int_to_bits(en, 8);
    in.insert(in.end(), eb.begin(), eb.end());
    in.push_back(master);
    auto out = eval(n, in);
    unsigned masked = master ? (req & en) : 0;
    int winner = -1;
    for (int i = 7; i >= 0; --i)
      if ((masked >> i) & 1) {
        winner = i;
        break;
      }
    for (unsigned i = 0; i < 8; ++i)
      EXPECT_EQ(out[i], static_cast<int>(i) == winner) << "grant " << i;
    // vec outputs follow grants; "active" output is the last one.
    EXPECT_EQ(out.back(), winner >= 0);
  }
}

TEST(Circuits, RandomDagIsDeterministic) {
  Network n1 = make_random_dag(16, 200, 8, 42);
  Network n2 = make_random_dag(16, 200, 8, 42);
  EXPECT_TRUE(check_equivalence(n1, n2).equivalent);
  Network n3 = make_random_dag(16, 200, 8, 43);
  EXPECT_EQ(n3.size(), n1.size());
  n3.check();
}

TEST(Circuits, SequentialPipelineShape) {
  Network n = make_sequential_pipeline(4, 8, 7);
  n.check();
  // 8 feedback latches + 3 inter-stage banks of 8.
  EXPECT_EQ(n.num_latches(), 8u + 3 * 8u);
  EXPECT_EQ(n.num_outputs(), 8u);
}

TEST(Circuits, Iscas85LikeSuiteScale) {
  auto suite = make_iscas85_like_suite();
  ASSERT_EQ(suite.size(), 9u);
  for (const auto& b : suite) {
    b.network.check();
    EXPECT_GT(b.network.num_internal(), 100u) << b.name;
    EXPECT_FALSE(b.note.empty());
  }
  // c6288-like is the multiplier: biggest internal node count share.
  EXPECT_EQ(suite[7].name, "c6288-like");
}

TEST(Circuits, SmallSuiteIsSane) {
  for (const auto& b : make_small_suite()) {
    b.network.check();
    EXPECT_GT(b.network.num_internal(), 10u) << b.name;
  }
}

}  // namespace
}  // namespace dagmap
