// The paper's table-level claims as per-circuit unit tests over the full
// ISCAS-85-like suite: the reproduction's load-bearing assertions,
// runnable without the bench harness.
#include <gtest/gtest.h>

#include "core/stats.hpp"
#include "dagmap/dagmap.hpp"

namespace dagmap {
namespace {

struct SuiteCase {
  std::string name;
  Network subject;
};

std::vector<SuiteCase>& suite_subjects() {
  static std::vector<SuiteCase> cases = [] {
    std::vector<SuiteCase> out;
    for (const auto& b : make_iscas85_like_suite())
      out.push_back({b.name, tech_decompose(b.network)});
    return out;
  }();
  return cases;
}

const GateLibrary& lib2() {
  static GateLibrary lib = make_lib2_library();
  return lib;
}

class PaperClaims : public ::testing::TestWithParam<int> {};

// Table 1-3 direction: DAG covering never loses to tree covering in
// delay, on any circuit, and both are functionally correct.
TEST_P(PaperClaims, DagBeatsTreeOnDelay) {
  const SuiteCase& c = suite_subjects()[GetParam()];
  MapResult tree = tree_map(c.subject, lib2());
  MapResult dag = dag_map(c.subject, lib2());
  EXPECT_LE(dag.optimal_delay, tree.optimal_delay + 1e-9) << c.name;
  // On these reconvergent circuits the win is strict.
  EXPECT_LT(dag.optimal_delay, tree.optimal_delay - 1e-9) << c.name;
  EXPECT_TRUE(
      check_equivalence(c.subject, dag.netlist.to_network()).equivalent)
      << c.name;
  EXPECT_TRUE(
      check_equivalence(c.subject, tree.netlist.to_network()).equivalent)
      << c.name;
}

// §3.3: the reported optimum is what the netlist actually achieves.
TEST_P(PaperClaims, ReportedDelayIsMeasuredDelay) {
  const SuiteCase& c = suite_subjects()[GetParam()];
  MapResult dag = dag_map(c.subject, lib2());
  EXPECT_NEAR(circuit_delay(dag.netlist), dag.optimal_delay, 1e-9) << c.name;
}

// §3.5: DAG covering duplicates, tree covering does not.
TEST_P(PaperClaims, DuplicationOnlyUnderDagCovering) {
  const SuiteCase& c = suite_subjects()[GetParam()];
  MapResult tree = tree_map(c.subject, lib2());
  MapResult dag = dag_map(c.subject, lib2());
  EXPECT_EQ(tree.duplicated_nodes, 0u) << c.name;
  EXPECT_GT(dag.duplicated_nodes, 0u) << c.name;
  // Tree covering creates at most one gate per subject node.
  EXPECT_LE(tree.netlist.num_gates(), c.subject.num_internal()) << c.name;
}

// Labels are a per-node certificate: no node's mapped arrival beats it.
TEST_P(PaperClaims, LabelsLowerBoundNodeArrivals) {
  const SuiteCase& c = suite_subjects()[GetParam()];
  MapResult dag = dag_map(c.subject, lib2());
  TimingReport t = analyze_timing(dag.netlist);
  // The worst PO driver arrival equals the max label over PO drivers.
  double worst_label = 0;
  for (const Output& o : c.subject.outputs())
    worst_label = std::max(worst_label, dag.label[o.node]);
  for (NodeId l : c.subject.latches())
    worst_label =
        std::max(worst_label, dag.label[c.subject.fanins(l)[0]]);
  EXPECT_NEAR(t.delay, worst_label, 1e-9) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, PaperClaims, ::testing::Range(0, 9),
    [](const ::testing::TestParamInfo<int>& info) {
      std::string n = make_iscas85_like_suite()[info.param].name;
      for (char& ch : n)
        if (ch == '-') ch = '_';
      return n;
    });

}  // namespace
}  // namespace dagmap
