// Integration tests: the complete flow (generate -> decompose -> map ->
// verify -> analyze) across circuits, libraries, mappers and options.
//
// These are the end-to-end guarantees a downstream user relies on:
//   * every mapping of every circuit with every library is functionally
//     equivalent to its subject graph;
//   * DAG covering never loses to tree covering in delay;
//   * reported optimal delay always equals the mapped netlist's timing;
//   * the flow is deterministic.
#include <gtest/gtest.h>

#include "dagmap/dagmap.hpp"
#include "decomp/choices.hpp"
#include "fanout/buffering.hpp"
#include "mapnet/write.hpp"

namespace dagmap {
namespace {

struct Libs {
  GateLibrary minimal = make_minimal_library();
  GateLibrary lib2 = make_lib2_library();
  GateLibrary l441 = make_44_library(1);
  GateLibrary l442 = make_44_library(2);

  std::vector<const GateLibrary*> all() const {
    return {&minimal, &lib2, &l441, &l442};
  }
};

const Libs& libs() {
  static Libs l;
  return l;
}

class FullFlow : public ::testing::TestWithParam<int> {};

TEST_P(FullFlow, EveryLibraryEveryMapperIsCorrect) {
  auto suite = make_small_suite();
  const auto& b = suite[GetParam()];
  Network sg = tech_decompose(b.network);
  for (const GateLibrary* lib : libs().all()) {
    MapResult tree = tree_map(sg, *lib);
    MapResult dag = dag_map(sg, *lib);
    EXPECT_TRUE(check_equivalence(sg, tree.netlist.to_network()).equivalent)
        << b.name << " tree " << lib->name();
    EXPECT_TRUE(check_equivalence(sg, dag.netlist.to_network()).equivalent)
        << b.name << " dag " << lib->name();
    EXPECT_LE(dag.optimal_delay, tree.optimal_delay + 1e-9)
        << b.name << " " << lib->name();
    EXPECT_NEAR(circuit_delay(dag.netlist), dag.optimal_delay, 1e-9)
        << b.name << " " << lib->name();
    EXPECT_NEAR(circuit_delay(tree.netlist), tree.optimal_delay, 1e-9)
        << b.name << " " << lib->name();
  }
}

TEST_P(FullFlow, OptionsPreserveCorrectness) {
  auto suite = make_small_suite();
  const auto& b = suite[GetParam()];
  Network sg = tech_decompose(b.network);
  const GateLibrary& lib = libs().lib2;

  DagMapOptions recover;
  recover.area_recovery = true;
  MapResult r1 = dag_map(sg, lib, recover);
  EXPECT_TRUE(check_equivalence(sg, r1.netlist.to_network()).equivalent);
  EXPECT_NEAR(circuit_delay(r1.netlist), r1.optimal_delay, 1e-9);

  DagMapOptions ext;
  ext.match_class = MatchClass::Extended;
  MapResult r2 = dag_map(sg, lib, ext);
  EXPECT_TRUE(check_equivalence(sg, r2.netlist.to_network()).equivalent);

  ChoiceDecomposition c = tech_decompose_choices(b.network);
  c.validate();
  MapResult r3 = dag_map(c.subject, lib, {.choices = &c.classes});
  EXPECT_TRUE(check_equivalence(b.network, r3.netlist.to_network()).equivalent);
  // Guaranteed dominance: same subject, choices off — the per-class
  // pricing only ever lowers a leaf price, never raises one.
  EXPECT_LE(r3.optimal_delay, dag_map(c.subject, lib).optimal_delay + 1e-9);
}

TEST_P(FullFlow, BufferingAndWritersCompose) {
  auto suite = make_small_suite();
  const auto& b = suite[GetParam()];
  Network sg = tech_decompose(b.network);
  const GateLibrary& lib = libs().lib2;
  MapResult r = dag_map(sg, lib);
  BufferResult buf = buffer_fanouts(r.netlist, lib, BufferOptions{3, {}});
  EXPECT_TRUE(check_equivalence(sg, buf.netlist.to_network()).equivalent);
  // Writers accept the buffered result.
  std::string blif = write_mapped_blif(buf.netlist);
  std::string verilog = write_mapped_verilog(buf.netlist);
  EXPECT_NE(blif.find(".gate"), std::string::npos);
  EXPECT_NE(verilog.find("endmodule"), std::string::npos);
}

TEST_P(FullFlow, DeterministicAcrossRuns) {
  auto suite = make_small_suite();
  const auto& b = suite[GetParam()];
  Network sg = tech_decompose(b.network);
  MapResult r1 = dag_map(sg, libs().lib2);
  MapResult r2 = dag_map(sg, libs().lib2);
  EXPECT_EQ(r1.optimal_delay, r2.optimal_delay);
  EXPECT_EQ(r1.netlist.total_area(), r2.netlist.total_area());
  EXPECT_EQ(write_mapped_blif(r1.netlist), write_mapped_blif(r2.netlist));
}

TEST_P(FullFlow, BlifRoundTripThenRemap) {
  // Write the subject as BLIF, read it back, re-map: same optimal delay.
  auto suite = make_small_suite();
  const auto& b = suite[GetParam()];
  Network sg = tech_decompose(b.network);
  Network back = parse_blif(write_blif(sg));
  Network sg2 = tech_decompose(back);
  MapResult r1 = dag_map(sg, libs().lib2);
  MapResult r2 = dag_map(sg2, libs().lib2);
  EXPECT_NEAR(r1.optimal_delay, r2.optimal_delay, 1e-9) << b.name;
}

TEST_P(FullFlow, FlowMapOnEverything) {
  auto suite = make_small_suite();
  const auto& b = suite[GetParam()];
  Network sg = tech_decompose(b.network);
  for (unsigned k : {4u, 6u}) {
    LutMapResult r = flowmap(sg, {.k = k});
    EXPECT_TRUE(check_equivalence(sg, r.netlist).equivalent)
        << b.name << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(SmallSuite, FullFlow, ::testing::Range(0, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return make_small_suite()[info.param].name;
                         });

// Randomized property sweep: random DAGs across seeds, every mapper must
// produce equivalent netlists and consistent delays.
class RandomFlow : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomFlow, MappersAgreeOnCorrectness) {
  Network src = make_random_dag(12, 120, 10, GetParam());
  Network sg = tech_decompose(src);
  const GateLibrary& lib = libs().lib2;
  MapResult dag = dag_map(sg, lib);
  MapResult tree = tree_map(sg, lib);
  EXPECT_TRUE(check_equivalence(sg, dag.netlist.to_network()).equivalent);
  EXPECT_TRUE(check_equivalence(sg, tree.netlist.to_network()).equivalent);
  EXPECT_LE(dag.optimal_delay, tree.optimal_delay + 1e-9);
  // Subject-graph decomposition preserved the source function too.
  EXPECT_TRUE(check_equivalence(src, sg).equivalent);
}

TEST_P(RandomFlow, AreaModesNeverBreakEquivalence) {
  Network src = make_random_dag(10, 80, 6, GetParam() * 31 + 7);
  Network sg = tech_decompose(src);
  TreeMapOptions area;
  area.objective = TreeMapObjective::Area;
  MapResult r = tree_map(sg, libs().lib2, area);
  EXPECT_TRUE(check_equivalence(sg, r.netlist.to_network()).equivalent);
  DagMapOptions recover;
  recover.area_recovery = true;
  MapResult r2 = dag_map(sg, libs().lib2, recover);
  EXPECT_TRUE(check_equivalence(sg, r2.netlist.to_network()).equivalent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFlow,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(SuiteRoundTrip, EveryBenchmarkSurvivesBlif) {
  // The exported suite must be readable back and functionally identical
  // (regression for constant-node emission).
  for (const auto& b : make_iscas85_like_suite()) {
    Network back = parse_blif(write_blif(b.network));
    back.check();
    EXPECT_TRUE(check_equivalence(b.network, back).equivalent) << b.name;
  }
}

}  // namespace
}  // namespace dagmap
