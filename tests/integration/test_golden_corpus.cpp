// Golden regression corpus: tiny BLIF+genlib pairs under
// tests/data/golden with recorded mapper results.  Any drift in delay,
// area or gate count fails with a readable expected-vs-actual diff and
// the exact line to paste into golden.expect if the change is intended.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/dag_mapper.hpp"
#include "decomp/tech_decomp.hpp"
#include "io/blif.hpp"
#include "io/genlib.hpp"
#include "library/gate_library.hpp"
#include "sim/simulator.hpp"
#include "supergate/supergate.hpp"

namespace dagmap {
namespace {

struct GoldenEntry {
  std::string name;   ///< corpus pair; a "+supergates" suffix selects the
                      ///< supergate-augmented library (default options)
  double delay = 0.0;
  double area = 0.0;
  std::size_t gates = 0;

  /// Corpus file stem ("gray3" for entry "gray3+supergates").
  std::string stem() const {
    std::size_t plus = name.find('+');
    return plus == std::string::npos ? name : name.substr(0, plus);
  }
  bool with_supergates() const {
    return name.size() > stem().size() &&
           name.substr(stem().size()) == "+supergates";
  }
};

std::string data_path(const std::string& rel) {
  return std::string(DAGMAP_TEST_DATA_DIR) + "/golden/" + rel;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<GoldenEntry> load_expectations() {
  std::ifstream in(data_path("golden.expect"));
  EXPECT_TRUE(in.good()) << "missing tests/data/golden/golden.expect";
  std::vector<GoldenEntry> entries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    GoldenEntry e;
    ls >> e.name >> e.delay >> e.area >> e.gates;
    EXPECT_FALSE(ls.fail()) << "malformed golden.expect line: " << line;
    entries.push_back(e);
  }
  return entries;
}

TEST(GoldenCorpus, MappedResultsMatchRecordedExpectations) {
  std::vector<GoldenEntry> entries = load_expectations();
  ASSERT_GE(entries.size(), 4u);
  for (const GoldenEntry& e : entries) {
    SCOPED_TRACE(e.name);
    Network circuit = parse_blif(slurp(data_path(e.stem() + ".blif")));
    std::vector<GenlibGate> gates =
        parse_genlib(slurp(data_path(e.stem() + ".genlib")));
    GateLibrary lib =
        e.with_supergates()
            ? std::move(generate_supergates(gates, {}, e.name).library)
            : GateLibrary::from_genlib(gates, e.name);
    Network subject = tech_decompose(circuit);
    MapResult r = dag_map(subject, lib, {});
    // Sanity beyond the numbers: the mapping must still be correct.
    EXPECT_TRUE(check_equivalence(circuit, r.netlist.to_network()).equivalent);

    bool drift = std::abs(r.optimal_delay - e.delay) > 1e-9 ||
                 std::abs(r.netlist.total_area() - e.area) > 1e-9 ||
                 r.netlist.num_gates() != e.gates;
    EXPECT_FALSE(drift)
        << "golden drift for '" << e.name << "':\n"
        << "  metric   expected   actual\n"
        << "  delay    " << e.delay << "   " << r.optimal_delay << "\n"
        << "  area     " << e.area << "   " << r.netlist.total_area() << "\n"
        << "  gates    " << e.gates << "   " << r.netlist.num_gates() << "\n"
        << "If the new mapping is intended (e.g. a cost-function change),\n"
        << "update tests/data/golden/golden.expect with:\n"
        << "  " << e.name << " " << r.optimal_delay << " "
        << r.netlist.total_area() << " " << r.netlist.num_gates();
  }
}

TEST(GoldenCorpus, EveryDataPairIsListed) {
  // Guard against silently orphaned corpus files: each expected entry
  // must load, and the count matches the pairs shipped in the corpus.
  std::vector<GoldenEntry> entries = load_expectations();
  for (const GoldenEntry& e : entries) {
    EXPECT_FALSE(slurp(data_path(e.stem() + ".blif")).empty());
    EXPECT_FALSE(slurp(data_path(e.stem() + ".genlib")).empty());
  }
}

}  // namespace
}  // namespace dagmap
