// Scale tier: the partitioned mapping pipeline end-to-end on large
// random subject graphs (gen/make_random_subject_graph).  The ~100k
// smoke runs in the default tier (CTest label `scale`); the 1M-node run
// only fires in the `long` CTest configuration (`ctest -C long -L
// fuzz-long`), gated here by the DAGMAP_SCALE_LONG environment variable.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/dag_mapper.hpp"
#include "core/partition.hpp"
#include "gen/circuits.hpp"
#include "library/standard_libs.hpp"

namespace dagmap {
namespace {

// Monolithic single-thread vs partitioned multi-thread on one subject:
// labels, delay, and netlist structural hash must be bit-identical.
// (BLIF byte comparison lives in the small-circuit tests — at this scale
// the hash is the cheap whole-netlist equality check.)
void expect_scale_identity(std::size_t num_nodes, std::uint64_t seed) {
  Network subject = make_random_subject_graph(num_nodes, 64, 32, seed);
  GateLibrary lib = make_lib2_library();

  DagMapOptions mono;
  mono.partition_mode = PartitionMode::Off;
  mono.num_threads = 1;
  MapResult ref = dag_map(subject, lib, mono);
  EXPECT_FALSE(ref.partitioned);

  DagMapOptions part;
  part.partition_mode = PartitionMode::On;
  part.num_threads = 0;  // all hardware threads
  MapResult r = dag_map(subject, lib, part);
  EXPECT_TRUE(r.partitioned);
  EXPECT_GT(r.num_partitions, 1u);

  ASSERT_EQ(r.label, ref.label);
  EXPECT_EQ(r.optimal_delay, ref.optimal_delay);
  EXPECT_EQ(r.netlist.structural_hash(), ref.netlist.structural_hash());
  EXPECT_EQ(r.netlist.num_gates(), ref.netlist.num_gates());
  EXPECT_EQ(r.netlist.total_area(), ref.netlist.total_area());
}

TEST(ScalePipeline, HundredKNodeSmoke) {
  // Above the auto threshold would also partition by default; the test
  // forces both schedules explicitly so the comparison is self-contained.
  expect_scale_identity(100000, 0x5CA1E);
}

TEST(ScalePipeline, PartitioningValidatesAtScale) {
  Network subject = make_random_subject_graph(100000, 64, 32, 7);
  PartitionOptions po;  // default 1024 window
  Partitioning parts = partition_subject(subject, po);
  parts.validate(subject, po);
  EXPECT_GT(parts.num_partitions(), 1u);
  EXPECT_LE(parts.max_partition_nodes(), po.window_size);
}

TEST(ScaleLong, MillionNodePartitionedIdentity) {
  if (std::getenv("DAGMAP_SCALE_LONG") == nullptr)
    GTEST_SKIP() << "set DAGMAP_SCALE_LONG=1 (ctest -C long) to run";
  expect_scale_identity(1000000, 0x1A11E);
}

}  // namespace
}  // namespace dagmap
