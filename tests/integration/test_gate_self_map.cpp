// Self-mapping property: for every library gate, a subject graph built
// from the gate's own function must map back to (at most) that gate's
// delay — the end-to-end consistency of ISOP lowering, pattern
// generation and matching.  A failure here means a gate in the library
// can never be used where it should be.
#include <gtest/gtest.h>

#include "boolmatch/bool_mapper.hpp"
#include "dagmap/dagmap.hpp"

namespace dagmap {
namespace {

// Builds a network whose single output computes `g`'s function from
// fresh primary inputs.
Network gate_as_network(const Gate& g) {
  Network n("self_" + g.name);
  std::vector<NodeId> ins;
  for (unsigned i = 0; i < g.num_inputs(); ++i)
    ins.push_back(n.add_input("i" + std::to_string(i)));
  n.add_output(n.add_logic(ins, g.function), "o");
  return n;
}

void check_self_map(const GateLibrary& lib) {
  for (const Gate& g : lib.gates()) {
    if (g.patterns.empty()) continue;  // buffers/constants
    Network src = gate_as_network(g);
    Network sg = tech_decompose(src);
    MapResult r = dag_map(sg, lib);
    // The mapping must be correct...
    ASSERT_TRUE(check_equivalence(sg, r.netlist.to_network()).equivalent)
        << g.name;
    // ...and no slower than the gate itself: the gate's pattern is built
    // by the same lowering as the subject graph, so it must match.
    EXPECT_LE(r.optimal_delay, g.max_pin_delay() + 1e-9)
        << g.name << " cannot cover its own function";
  }
}

TEST(GateSelfMap, Lib2) { check_self_map(make_lib2_library()); }

TEST(GateSelfMap, FortyFourOne) { check_self_map(make_44_library(1)); }

TEST(GateSelfMap, FortyFourTwo) { check_self_map(make_44_library(2)); }

// Tree mapping also self-maps single gates (a gate alone is one tree).
TEST(GateSelfMap, TreeMapperLib2) {
  GateLibrary lib = make_lib2_library();
  for (const Gate& g : lib.gates()) {
    if (g.patterns.empty()) continue;
    Network sg = tech_decompose(gate_as_network(g));
    MapResult r = tree_map(sg, lib);
    EXPECT_LE(r.optimal_delay, g.max_pin_delay() + 1e-9) << g.name;
  }
}

// Boolean matching is function-based: self-mapping holds for every
// <=4-input gate regardless of decomposition shape.
TEST(GateSelfMap, BoolMatchShapeIndependent) {
  GateLibrary lib = make_lib2_library();
  for (const Gate& g : lib.gates()) {
    if (g.patterns.empty() || g.num_inputs() > 4) continue;
    for (DecompShape shape : {DecompShape::Balanced, DecompShape::Chain}) {
      TechDecompOptions opt;
      opt.shape = shape;
      Network sg = tech_decompose(gate_as_network(g), opt);
      MapResult r = bool_map(sg, lib);
      EXPECT_LE(r.optimal_delay, g.max_pin_delay() + 1e-9)
          << g.name << " shape " << static_cast<int>(shape);
    }
  }
}

}  // namespace
}  // namespace dagmap
