// Tests for the Boolean-matching mapper.
#include "boolmatch/bool_mapper.hpp"

#include <gtest/gtest.h>

#include "decomp/tech_decomp.hpp"
#include "gen/circuits.hpp"
#include "library/standard_libs.hpp"
#include "sim/simulator.hpp"
#include "timing/timing.hpp"

namespace dagmap {
namespace {

TEST(BoolMap, CorrectOnSmallSuite) {
  GateLibrary lib = make_lib2_library();
  for (const auto& b : make_small_suite()) {
    Network sg = tech_decompose(b.network);
    MapResult r = bool_map(sg, lib);
    r.netlist.check();
    EXPECT_TRUE(check_equivalence(sg, r.netlist.to_network()).equivalent)
        << b.name;
    EXPECT_NEAR(circuit_delay(r.netlist), r.optimal_delay, 1e-9) << b.name;
  }
}

TEST(BoolMap, FindsXorRegardlessOfShape) {
  // Boolean matching is shape-insensitive: both the balanced and the
  // chain decomposition of XOR map to the xor2 gate, while structural
  // matching only catches the shape the pattern generator happened to
  // produce.
  GateLibrary lib = make_lib2_library();
  for (DecompShape shape : {DecompShape::Balanced, DecompShape::Chain}) {
    Network src("x");
    NodeId a = src.add_input("a");
    NodeId b = src.add_input("b");
    src.add_output(src.add_xor(a, b), "o");
    TechDecompOptions opt;
    opt.shape = shape;
    Network sg = tech_decompose(src, opt);
    MapResult r = bool_map(sg, lib);
    auto hist = r.netlist.gate_histogram();
    EXPECT_EQ(hist.count("xor2"), 1u);
    EXPECT_TRUE(check_equivalence(sg, r.netlist.to_network()).equivalent);
  }
}

TEST(BoolMap, UsesInvertersForPolarity) {
  // A NOR structure with no matching positive-phase gate nearby forces
  // input/output inverters; equivalence must hold and inverter instances
  // appear.
  GateLibrary lib = GateLibrary::from_genlib_text(
      "GATE inv 1 O=!a;\n PIN a INV 1 999 1.0 0 1.0 0\n"
      "GATE nand2 2 O=!(a*b);\n PIN * INV 1 999 1.2 0 1.2 0\n"
      "GATE and4 5 O=a*b*c*d;\n PIN * NONINV 1 999 1.9 0 1.9 0\n");
  // Subject: o = OR of 4 inputs (NPN-equivalent to and4 with all pins
  // and the output negated).
  Network src("or4");
  std::vector<NodeId> ins;
  for (int i = 0; i < 4; ++i)
    ins.push_back(src.add_input("i" + std::to_string(i)));
  src.add_output(src.add_or(std::span<const NodeId>(ins)), "o");
  Network sg = tech_decompose(src);
  MapResult r = bool_map(sg, lib);
  EXPECT_TRUE(check_equivalence(sg, r.netlist.to_network()).equivalent);
  auto hist = r.netlist.gate_histogram();
  // The and4-based implementation (4 input inverters + and4 + output
  // inverter) competes with pure nand2 trees; whichever wins, inverters
  // exist somewhere and the delay is consistent.
  EXPECT_NEAR(circuit_delay(r.netlist), r.optimal_delay, 1e-9);
  (void)hist;
}

TEST(BoolMap, NeverWorseThanStructuralOnSharedSpace) {
  // With explicit-inverter freedom and NPN lookup over 4-cuts, Boolean
  // matching should be at least as good as structural matching for
  // lib2's small gates on these subjects.
  GateLibrary lib = make_lib2_library();
  int wins = 0, ties = 0, losses = 0;
  for (const auto& b : make_small_suite()) {
    Network sg = tech_decompose(b.network);
    MapResult rs = dag_map(sg, lib);
    MapResult rb = bool_map(sg, lib);
    if (rb.optimal_delay < rs.optimal_delay - 1e-9) ++wins;
    else if (rb.optimal_delay > rs.optimal_delay + 1e-9) ++losses;
    else ++ties;
  }
  // Not a theorem in either direction (inverter costs vs deep patterns),
  // but Boolean matching must be competitive: no blowout losses.
  EXPECT_GE(wins + ties, losses);
}

TEST(BoolMap, SequentialSubjects) {
  GateLibrary lib = make_lib2_library();
  Network sg = tech_decompose(make_sequential_pipeline(3, 6, 41));
  MapResult r = bool_map(sg, lib);
  EXPECT_EQ(r.netlist.latches().size(), sg.num_latches());
  EXPECT_TRUE(check_equivalence(sg, r.netlist.to_network()).equivalent);
}

TEST(BoolMap, CutSizeTwoStillComplete) {
  GateLibrary lib = make_minimal_library();
  Network sg = tech_decompose(make_parity_tree(8));
  BoolMapOptions opt;
  opt.cut_size = 2;
  MapResult r = bool_map(sg, lib, opt);
  EXPECT_TRUE(check_equivalence(sg, r.netlist.to_network()).equivalent);
}

}  // namespace
}  // namespace dagmap
