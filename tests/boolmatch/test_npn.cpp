// Tests for NPN canonicalization.
#include "boolmatch/npn.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dagmap {
namespace {

std::uint16_t tt_of(const char* expr_vars2) {
  // Tiny helper for 2-var functions padded to 4 vars.
  TruthTable a = TruthTable::variable(0, 2), b = TruthTable::variable(1, 2);
  std::string s = expr_vars2;
  TruthTable f = s == "and"    ? a & b
                 : s == "or"   ? a | b
                 : s == "xor"  ? a ^ b
                 : s == "nand" ? ~(a & b)
                 : s == "nor"  ? ~(a | b)
                               : ~(a ^ b);
  return pack_tt4(f);
}

TEST(Npn, IdentityTransformIsNoop) {
  NpnTransform id;
  for (std::uint16_t tt : {0x8888, 0x6666, 0x1234, 0xFFFE})
    EXPECT_EQ(npn_apply(tt, id), tt);
}

TEST(Npn, ApplyComposeConsistency) {
  std::uint64_t s = 12345;
  for (int trial = 0; trial < 50; ++trial) {
    auto rnd = [&] {
      s = s * 6364136223846793005ull + 1442695040888963407ull;
      return s;
    };
    NpnTransform a, b;
    std::array<std::uint8_t, 4> pa{0, 1, 2, 3}, pb{0, 1, 2, 3};
    for (int i = 3; i > 0; --i) {
      std::swap(pa[i], pa[rnd() % (i + 1)]);
      std::swap(pb[i], pb[rnd() % (i + 1)]);
    }
    a.perm = pa;
    b.perm = pb;
    a.input_negate = rnd() & 15;
    b.input_negate = rnd() & 15;
    a.output_negate = rnd() & 1;
    b.output_negate = rnd() & 1;
    std::uint16_t tt = static_cast<std::uint16_t>(rnd());
    EXPECT_EQ(npn_apply(npn_apply(tt, a), b), npn_apply(tt, npn_compose(a, b)));
    EXPECT_EQ(npn_apply(npn_apply(tt, a), npn_inverse(a)), tt);
  }
}

TEST(Npn, CanonicalIsInvariantUnderTransforms) {
  std::uint16_t xor_tt = tt_of("xor");
  NpnTransform t;
  t.perm = {1, 0, 2, 3};
  t.input_negate = 0b0001;
  t.output_negate = true;
  std::uint16_t moved = npn_apply(xor_tt, t);
  EXPECT_EQ(npn_canonical(xor_tt), npn_canonical(moved));
}

TEST(Npn, NandAndNorShareAClassButNotXor) {
  // AND/OR/NAND/NOR are one NPN class; XOR/XNOR another.
  std::uint16_t c_and = npn_canonical(tt_of("and"));
  EXPECT_EQ(c_and, npn_canonical(tt_of("or")));
  EXPECT_EQ(c_and, npn_canonical(tt_of("nand")));
  EXPECT_EQ(c_and, npn_canonical(tt_of("nor")));
  std::uint16_t c_xor = npn_canonical(tt_of("xor"));
  EXPECT_EQ(c_xor, npn_canonical(tt_of("xnor")));
  EXPECT_NE(c_and, c_xor);
}

TEST(Npn, ReportedTransformAchievesCanonical) {
  std::uint64_t s = 777;
  for (int trial = 0; trial < 100; ++trial) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    std::uint16_t tt = static_cast<std::uint16_t>(s >> 17);
    NpnTransform t;
    std::uint16_t canon = npn_canonical(tt, &t);
    EXPECT_EQ(npn_apply(tt, t), canon);
  }
}

TEST(Npn, ClassCountIsPlausible) {
  // All 2^16 functions of 4 vars fall into exactly 222 NPN classes.
  std::set<std::uint16_t> classes;
  for (unsigned tt = 0; tt < 65536; tt += 7)  // sample densely
    classes.insert(npn_canonical(static_cast<std::uint16_t>(tt)));
  EXPECT_LE(classes.size(), 222u);
  EXPECT_GE(classes.size(), 150u);  // dense sample hits most classes
}

TEST(Npn, PackHandlesNarrowFunctions) {
  TruthTable inv = ~TruthTable::variable(0, 1);
  std::uint16_t tt = pack_tt4(inv);
  // Padded inverter: bit m = !(m & 1).
  for (unsigned m = 0; m < 16; ++m)
    EXPECT_EQ((tt >> m) & 1u, (m & 1u) ? 0u : 1u);
}

}  // namespace
}  // namespace dagmap
