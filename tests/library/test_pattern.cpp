// Tests for pattern-graph generation from gate functions.
#include "library/pattern.hpp"

#include <gtest/gtest.h>

namespace dagmap {
namespace {

std::vector<PatternGraph> patterns_of(const std::string& fn) {
  Expr e = parse_expression(fn);
  return generate_patterns(e, expr_variables(e));
}

TEST(Pattern, InverterIsSingleInvNode) {
  auto ps = patterns_of("!a");
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0].num_internal(), 1u);
  EXPECT_EQ(ps[0].num_leaves(), 1u);
  EXPECT_EQ(ps[0].to_string(), "INV(p0)");
}

TEST(Pattern, Nand2IsSingleNandNode) {
  auto ps = patterns_of("!(a*b)");
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0].to_string(), "NAND(p0,p1)");
}

TEST(Pattern, And2IsInvOfNand) {
  auto ps = patterns_of("a*b");
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0].to_string(), "INV(NAND(p0,p1))");
}

TEST(Pattern, Or2UsesComplementedInputs) {
  auto ps = patterns_of("a+b");
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0].to_string(), "NAND(INV(p0),INV(p1))");
}

TEST(Pattern, Nand4HasBalancedAndChainShapes) {
  auto ps = patterns_of("!(a*b*c*d)");
  // Balanced: NAND(AND(ab), AND(cd)); chain: NAND(AND(AND(ab)c), d) — two
  // distinct shapes.
  EXPECT_EQ(ps.size(), 2u);
}

TEST(Pattern, Nand3ShapesCoincide) {
  auto ps = patterns_of("!(a*b*c)");
  // For three operands balanced and chain association coincide.
  EXPECT_EQ(ps.size(), 1u);
}

TEST(Pattern, XorSharesLeaves) {
  auto ps = patterns_of("a*!b+!a*b");
  ASSERT_GE(ps.size(), 1u);
  const PatternGraph& g = ps[0];
  // Exactly two leaves even though each variable occurs twice.
  EXPECT_EQ(g.num_leaves(), 2u);
  // The classic XOR NAND network: 3 NANDs + 2 INVs = 5 internal nodes.
  EXPECT_EQ(g.num_internal(), 5u);
}

TEST(Pattern, BuffersAndConstantsExcluded) {
  EXPECT_TRUE(patterns_of("a").empty());
  EXPECT_TRUE(patterns_of("CONST0").empty());
  EXPECT_TRUE(patterns_of("CONST1").empty());
}

TEST(Pattern, OutDegreesCountPatternEdges) {
  auto ps = patterns_of("a*!b+!a*b");  // shared leaves => out-degree 2
  const PatternGraph& g = ps[0];
  auto deg = g.out_degrees();
  unsigned leaves_with_two = 0;
  for (std::size_t i = 0; i < g.nodes.size(); ++i)
    if (g.nodes[i].kind == PatternNode::Kind::Leaf && deg[i] == 2)
      ++leaves_with_two;
  EXPECT_EQ(leaves_with_two, 2u);
  EXPECT_EQ(deg[g.root], 0u);
}

TEST(Pattern, StructuralHashIsCommutative) {
  Expr e1 = parse_expression("!(a*b)");
  Expr e2 = parse_expression("!(b*a)");
  auto p1 = generate_patterns(e1, {"a", "b"});
  auto p2 = generate_patterns(e2, {"b", "a"});  // same pin indices swapped
  ASSERT_EQ(p1.size(), 1u);
  ASSERT_EQ(p2.size(), 1u);
  EXPECT_EQ(p1[0].structural_hash(), p2[0].structural_hash());
}

TEST(Pattern, HashDistinguishesDifferentFunctions) {
  auto pa = patterns_of("!(a*b)");
  auto po = patterns_of("!(a+b)");
  EXPECT_NE(pa[0].structural_hash(), po[0].structural_hash());
}

TEST(Pattern, Aoi22Structure) {
  auto ps = patterns_of("!(a*b+c*d)");
  ASSERT_GE(ps.size(), 1u);
  // !(ab+cd) = NAND(!(ab)' ... ) = NAND(INV(NAND(a,b)) , INV(NAND(c,d)))
  // lowered: OR(x,y) under NOT: NOT(OR(AND,AND)) — after double-inv
  // collapse the root is an INV of NAND(INV(NAND),INV(NAND)) ... verify
  // only the counts: 4 leaves, internal nodes <= 6.
  EXPECT_EQ(ps[0].num_leaves(), 4u);
  EXPECT_LE(ps[0].num_internal(), 6u);
}

TEST(Pattern, DeepGateSixteenInputs) {
  // The 44-3 largest gate: !(abcd + efgh + ijkl + mnop).
  auto ps = patterns_of("!(a*b*c*d+e*f*g*h+i*j*k*l+m*n*o*p)");
  ASSERT_GE(ps.size(), 1u);
  for (const auto& g : ps) {
    EXPECT_EQ(g.num_leaves(), 16u);
    // Nodes are topologically ordered with a valid root.
    for (const PatternNode& n : g.nodes) {
      if (n.kind == PatternNode::Kind::Nand2) {
        EXPECT_GE(n.fanin0, 0);
        EXPECT_GE(n.fanin1, 0);
      }
    }
    EXPECT_LT(g.root, g.nodes.size());
  }
}

TEST(Pattern, TopologicalOrderInvariant) {
  for (const char* fn :
       {"!(a*b+c)", "a*b+c*d", "!(a+b+c+d)", "a*!b+!a*b", "!((a+b)*(c+d))"}) {
    for (const auto& g : patterns_of(fn)) {
      for (std::size_t i = 0; i < g.nodes.size(); ++i) {
        if (g.nodes[i].fanin0 >= 0) {
          EXPECT_LT(static_cast<std::size_t>(g.nodes[i].fanin0), i) << fn;
        }
        if (g.nodes[i].fanin1 >= 0) {
          EXPECT_LT(static_cast<std::size_t>(g.nodes[i].fanin1), i) << fn;
        }
      }
    }
  }
}

}  // namespace
}  // namespace dagmap
