// Tests for GateLibrary construction and the built-in library families.
#include "library/gate_library.hpp"

#include <gtest/gtest.h>

#include "library/standard_libs.hpp"

namespace dagmap {
namespace {

TEST(GateLibrary, FromGenlibResolvesPins) {
  GateLibrary lib = GateLibrary::from_genlib_text(
      "GATE aoi21 3 O=!(a*b+c);\n"
      " PIN a INV 1 999 2.0 0 1.8 0\n"
      " PIN b INV 1 999 2.0 0 1.8 0\n"
      " PIN c INV 1 999 1.4 0 1.2 0\n");
  ASSERT_EQ(lib.size(), 1u);
  const Gate& g = lib.gates()[0];
  ASSERT_EQ(g.num_inputs(), 3u);
  EXPECT_EQ(g.pins[0].name, "a");
  EXPECT_DOUBLE_EQ(g.pins[0].delay(), 2.0);  // max(rise, fall)
  EXPECT_DOUBLE_EQ(g.pins[2].delay(), 1.4);
  EXPECT_DOUBLE_EQ(g.max_pin_delay(), 2.0);
}

TEST(GateLibrary, WildcardPinAppliesToAll) {
  GateLibrary lib = GateLibrary::from_genlib_text(
      "GATE nand3 3 O=!(a*b*c);\n PIN * INV 1 999 1.5 0 1.3 0\n");
  const Gate& g = lib.gates()[0];
  for (const GatePin& p : g.pins) EXPECT_DOUBLE_EQ(p.delay(), 1.5);
}

TEST(GateLibrary, BaseGatesIdentified) {
  GateLibrary lib = make_minimal_library();
  ASSERT_TRUE(lib.is_complete_for_mapping());
  EXPECT_EQ(lib.inverter()->name, "inv");
  EXPECT_EQ(lib.nand2()->name, "nand2");
}

TEST(GateLibrary, MinAreaBaseGateWins) {
  GateLibrary lib = GateLibrary::from_genlib_text(
      "GATE inv_big 4 O=!a;\n PIN a INV 1 999 0.5 0 0.5 0\n"
      "GATE inv_small 1 O=!a;\n PIN a INV 1 999 1.0 0 1.0 0\n"
      "GATE nand2 2 O=!(a*b);\n PIN * INV 1 999 1.2 0 1.2 0\n");
  EXPECT_EQ(lib.inverter()->name, "inv_small");
}

TEST(GateLibrary, IncompleteLibraryDetected) {
  GateLibrary lib = GateLibrary::from_genlib_text(
      "GATE inv 1 O=!a;\n PIN a INV 1 999 1.0 0 1.0 0\n");
  EXPECT_FALSE(lib.is_complete_for_mapping());
}

TEST(GateLibrary, FunctionTruthTables) {
  GateLibrary lib = make_lib2_library();
  for (const Gate& g : lib.gates()) {
    EXPECT_EQ(g.function.num_vars(), g.num_inputs()) << g.name;
    // All lib2 gates depend on all their pins.
    for (unsigned v = 0; v < g.num_inputs(); ++v)
      EXPECT_TRUE(g.function.depends_on(v)) << g.name << " pin " << v;
  }
}

TEST(GateLibrary, Lib2IsCompleteAndSized) {
  GateLibrary lib = make_lib2_library();
  EXPECT_TRUE(lib.is_complete_for_mapping());
  EXPECT_GE(lib.size(), 25u);
  EXPECT_GT(lib.total_patterns(), lib.size() / 2);
  EXPECT_EQ(lib.max_gate_inputs(), 6u);
}

TEST(GateLibrary, FortyFourOneHasSevenGates) {
  GateLibrary lib = make_44_library(1);
  EXPECT_EQ(lib.size(), 7u);
  EXPECT_TRUE(lib.is_complete_for_mapping());
  EXPECT_EQ(lib.max_gate_inputs(), 4u);
}

TEST(GateLibrary, FortyFourThreeHas625GatesUpTo16Inputs) {
  GateLibrary lib = make_44_library(3);
  EXPECT_EQ(lib.size(), 625u);  // the paper's gate count
  EXPECT_TRUE(lib.is_complete_for_mapping());
  EXPECT_EQ(lib.max_gate_inputs(), 16u);  // the paper's largest gate
}

TEST(GateLibrary, FortyFourThreeIsSupersetOfFortyFourOne) {
  GateLibrary l1 = make_44_library(1);
  GateLibrary l3 = make_44_library(3);
  // Every 44-1 function appears in 44-3 (by truth table).
  for (const Gate& g1 : l1.gates()) {
    bool found = false;
    for (const Gate& g3 : l3.gates())
      if (g3.function == g1.function) {
        found = true;
        break;
      }
    EXPECT_TRUE(found) << g1.name;
  }
}

TEST(GateLibrary, EveryNonTrivialGateHasPatterns) {
  for (int level : {1, 2, 3}) {
    GateLibrary lib = make_44_library(level);
    for (const Gate& g : lib.gates())
      EXPECT_FALSE(g.patterns.empty()) << lib.name() << "/" << g.name;
  }
}

TEST(GateLibrary, PatternLeavesMatchPinCount) {
  GateLibrary lib = make_lib2_library();
  for (const Gate& g : lib.gates())
    for (const PatternGraph& p : g.patterns) {
      EXPECT_EQ(p.num_leaves(), g.num_inputs()) << g.name;
      for (const PatternNode& n : p.nodes)
        if (n.kind == PatternNode::Kind::Leaf) {
          EXPECT_GE(n.pin, 0);
          EXPECT_LT(n.pin, static_cast<int>(g.num_inputs()));
        }
    }
}

TEST(GateLibrary, TotalPatternNodesIsTheComplexityConstant) {
  GateLibrary small = make_44_library(1);
  GateLibrary big = make_44_library(3);
  EXPECT_GT(big.total_pattern_nodes(), 10 * small.total_pattern_nodes());
}

TEST(GateLibrary, RicherGatesBeatNandTreesInDelay) {
  // The 16-input AOI-4444 gate must be faster than 4+ levels of NAND2.
  GateLibrary lib = make_44_library(3);
  const Gate* aoi4444 = nullptr;
  for (const Gate& g : lib.gates())
    if (g.num_inputs() == 16) aoi4444 = &g;
  ASSERT_NE(aoi4444, nullptr);
  double nand2_delay = 0;
  for (const Gate& g : lib.gates())
    if (g.function ==
        ~(TruthTable::variable(0, 2) & TruthTable::variable(1, 2)))
      nand2_delay = g.max_pin_delay();
  EXPECT_LT(aoi4444->max_pin_delay(), 4 * nand2_delay);
}

}  // namespace
}  // namespace dagmap
