// Round-trip tests: generated libraries survive GENLIB serialization,
// and rebuilt libraries are functionally identical.
#include <gtest/gtest.h>

#include "io/genlib.hpp"
#include "library/gate_library.hpp"
#include "library/standard_libs.hpp"

namespace dagmap {
namespace {

class FortyFourRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(FortyFourRoundTrip, GenlibSerializationPreservesEverything) {
  int level = GetParam();
  auto gates = make_44_genlib(level);
  auto gates2 = parse_genlib(write_genlib(gates));
  ASSERT_EQ(gates2.size(), gates.size());
  for (std::size_t i = 0; i < gates.size(); ++i) {
    EXPECT_EQ(gates2[i].name, gates[i].name);
    EXPECT_DOUBLE_EQ(gates2[i].area, gates[i].area);
    auto v1 = expr_variables(gates[i].function);
    auto v2 = expr_variables(gates2[i].function);
    ASSERT_EQ(v1, v2) << gates[i].name;
    EXPECT_EQ(expr_truth_table(gates2[i].function, v2),
              expr_truth_table(gates[i].function, v1))
        << gates[i].name;
    ASSERT_EQ(gates2[i].pins.size(), gates[i].pins.size());
    for (std::size_t p = 0; p < gates[i].pins.size(); ++p) {
      EXPECT_DOUBLE_EQ(gates2[i].pins[p].rise_block,
                       gates[i].pins[p].rise_block);
      EXPECT_DOUBLE_EQ(gates2[i].pins[p].input_load,
                       gates[i].pins[p].input_load);
    }
  }
}

TEST_P(FortyFourRoundTrip, RebuiltLibraryMapsIdentically) {
  int level = GetParam();
  GateLibrary direct = make_44_library(level);
  GateLibrary rebuilt = GateLibrary::from_genlib(
      parse_genlib(write_genlib(make_44_genlib(level))), "rebuilt");
  ASSERT_EQ(rebuilt.size(), direct.size());
  EXPECT_EQ(rebuilt.total_patterns(), direct.total_patterns());
  EXPECT_EQ(rebuilt.total_pattern_nodes(), direct.total_pattern_nodes());
  EXPECT_EQ(rebuilt.max_gate_inputs(), direct.max_gate_inputs());
}

INSTANTIATE_TEST_SUITE_P(Levels, FortyFourRoundTrip, ::testing::Values(1, 2));

TEST(Lib2RoundTrip, TextSurvives) {
  auto gates = parse_genlib(lib2_genlib_text());
  auto gates2 = parse_genlib(write_genlib(gates));
  ASSERT_EQ(gates2.size(), gates.size());
  GateLibrary lib = GateLibrary::from_genlib(gates2, "lib2rt");
  EXPECT_TRUE(lib.is_complete_for_mapping());
  EXPECT_NE(lib.buffer(), nullptr);
}

}  // namespace
}  // namespace dagmap
