// Tests for mapped-netlist writers (mapped BLIF and structural Verilog).
#include "mapnet/write.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "core/dag_mapper.hpp"
#include "decomp/tech_decomp.hpp"
#include "gen/circuits.hpp"
#include "library/standard_libs.hpp"
#include "sim/simulator.hpp"
#include "io/expr.hpp"

namespace dagmap {
namespace {

MappedNetlist sample_mapping() {
  Network sg = tech_decompose(make_comparator(4));
  static GateLibrary lib = make_lib2_library();
  return dag_map(sg, lib).netlist;
}

TEST(MappedWrite, BlifContainsGateLines) {
  MappedNetlist m = sample_mapping();
  std::string text = write_mapped_blif(m);
  EXPECT_NE(text.find(".model"), std::string::npos);
  EXPECT_NE(text.find(".gate"), std::string::npos);
  EXPECT_NE(text.find(".end"), std::string::npos);
  // One .gate line per gate instance.
  std::size_t count = 0, pos = 0;
  while ((pos = text.find(".gate", pos)) != std::string::npos) {
    ++count;
    pos += 5;
  }
  EXPECT_EQ(count, m.num_gates());
}

TEST(MappedWrite, BlifListsInterface) {
  MappedNetlist m = sample_mapping();
  std::string text = write_mapped_blif(m);
  for (InstId pi : m.inputs())
    EXPECT_NE(text.find(m.name(pi)), std::string::npos);
  for (const Output& o : m.outputs())
    EXPECT_NE(text.find(o.name), std::string::npos);
}

TEST(MappedWrite, VerilogIsWellFormed) {
  MappedNetlist m = sample_mapping();
  std::string text = write_mapped_verilog(m);
  EXPECT_NE(text.find("module"), std::string::npos);
  EXPECT_NE(text.find("endmodule"), std::string::npos);
  // Every gate instantiated once.
  std::size_t count = 0, pos = 0;
  while ((pos = text.find("(.", pos)) != std::string::npos) {
    ++count;
    pos += 2;
  }
  EXPECT_GE(count, m.num_gates());
  // Identifiers are sanitized: no '[' outside comments.
  std::size_t body = text.find("module");
  EXPECT_EQ(text.find('[', body), std::string::npos);
}

TEST(MappedWrite, VerilogLatchesUseDff) {
  GateLibrary lib = make_lib2_library();
  Network sg = tech_decompose(make_sequential_pipeline(2, 4, 5));
  MappedNetlist m = dag_map(sg, lib).netlist;
  std::string text = write_mapped_verilog(m);
  EXPECT_NE(text.find("dff"), std::string::npos);
  std::string blif = write_mapped_blif(m);
  EXPECT_NE(blif.find(".latch"), std::string::npos);
}

TEST(MappedWrite, DeterministicOutput) {
  MappedNetlist m = sample_mapping();
  EXPECT_EQ(write_mapped_blif(m), write_mapped_blif(m));
  EXPECT_EQ(write_mapped_verilog(m), write_mapped_verilog(m));
}

TEST(MappedWrite, MappedBlifRoundTrip) {
  GateLibrary lib = make_lib2_library();
  Network sg = tech_decompose(make_comparator(4));
  MappedNetlist m = dag_map(sg, lib).netlist;
  MappedNetlist back = parse_mapped_blif(write_mapped_blif(m), lib);
  back.check();
  EXPECT_EQ(back.num_gates(), m.num_gates());
  EXPECT_DOUBLE_EQ(back.total_area(), m.total_area());
  EXPECT_EQ(back.gate_histogram(), m.gate_histogram());
  // Function preserved (same PI/PO interface through to_network).
  EXPECT_TRUE(
      check_equivalence(m.to_network(), back.to_network()).equivalent);
}

TEST(MappedWrite, MappedBlifSequentialRoundTrip) {
  GateLibrary lib = make_lib2_library();
  Network sg = tech_decompose(make_sequential_pipeline(2, 4, 9));
  MappedNetlist m = dag_map(sg, lib).netlist;
  MappedNetlist back = parse_mapped_blif(write_mapped_blif(m), lib);
  back.check();
  EXPECT_EQ(back.latches().size(), m.latches().size());
  EXPECT_TRUE(
      check_equivalence(m.to_network(), back.to_network()).equivalent);
}

TEST(MappedWrite, MappedBlifRejectsUnknownCells) {
  GateLibrary lib = make_minimal_library();
  EXPECT_THROW(parse_mapped_blif(".model m\n.inputs a\n.outputs o\n"
                                 ".gate frobnicator a=a O=o\n.end\n",
                                 lib),
               ParseError);
  EXPECT_THROW(parse_mapped_blif(".model m\n.inputs a\n.outputs o\n"
                                 ".gate nand2 a=a O=o\n.end\n",
                                 lib),
               ParseError);  // unconnected pin b
}

TEST(MappedWrite, FileDispatchOnExtension) {
  MappedNetlist m = sample_mapping();
  write_mapped_file(m, "/tmp/dagmap_write_test.v");
  write_mapped_file(m, "/tmp/dagmap_write_test.blif");
  std::ifstream v("/tmp/dagmap_write_test.v");
  std::string first;
  std::getline(v, first);
  EXPECT_NE(first.find("//"), std::string::npos);
  std::ifstream b("/tmp/dagmap_write_test.blif");
  std::getline(b, first);
  EXPECT_EQ(first.rfind(".model", 0), 0u);
}

}  // namespace
}  // namespace dagmap
