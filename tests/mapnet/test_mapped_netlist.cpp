// Tests for MappedNetlist and cover construction.
#include "mapnet/mapped_netlist.hpp"

#include <gtest/gtest.h>

#include "library/standard_libs.hpp"
#include "mapnet/cover.hpp"
#include "netlist/assert.hpp"
#include "sim/simulator.hpp"

namespace dagmap {
namespace {

const Gate* find_gate(const GateLibrary& lib, const std::string& name) {
  for (const Gate& g : lib.gates())
    if (g.name == name) return &g;
  return nullptr;
}

TEST(MappedNetlist, BasicConstructionAndStats) {
  GateLibrary lib = make_lib2_library();
  MappedNetlist m("t");
  InstId a = m.add_input("a");
  InstId b = m.add_input("b");
  const Gate* nand2 = find_gate(lib, "nand2");
  const Gate* inv = find_gate(lib, "inv");
  InstId g = m.add_gate(nand2, {a, b});
  InstId h = m.add_gate(inv, {g});
  m.add_output(h, "o");
  m.check();
  EXPECT_EQ(m.num_gates(), 2u);
  EXPECT_DOUBLE_EQ(m.total_area(), nand2->area + inv->area);
  auto hist = m.gate_histogram();
  EXPECT_EQ(hist["nand2"], 1u);
  EXPECT_EQ(hist["inv"], 1u);
}

TEST(MappedNetlist, ArityMismatchRejected) {
  GateLibrary lib = make_lib2_library();
  MappedNetlist m("t");
  InstId a = m.add_input("a");
  EXPECT_THROW(m.add_gate(find_gate(lib, "nand2"), {a}), ContractError);
}

TEST(MappedNetlist, ToNetworkPreservesFunction) {
  GateLibrary lib = make_lib2_library();
  MappedNetlist m("fa_carry");
  InstId a = m.add_input("a");
  InstId b = m.add_input("b");
  InstId c = m.add_input("cin");
  // cout = ab + c(a xor b): build as aoi + inv for test purposes —
  // simpler: maj via and/or gates.
  const Gate* and2 = find_gate(lib, "and2");
  const Gate* or2 = find_gate(lib, "or2");
  InstId ab = m.add_gate(and2, {a, b});
  InstId bc = m.add_gate(and2, {b, c});
  InstId ac = m.add_gate(and2, {a, c});
  InstId o1 = m.add_gate(or2, {ab, bc});
  InstId o2 = m.add_gate(or2, {o1, ac});
  m.add_output(o2, "maj");
  Network n = m.to_network();
  n.check();
  TruthTable t = output_truth_table(n, 0);
  EXPECT_EQ(t.to_hex(), "e8");
}

TEST(MappedNetlist, LatchRoundTrip) {
  GateLibrary lib = make_lib2_library();
  MappedNetlist m("seq");
  InstId x = m.add_input("x");
  InstId q = m.add_latch_placeholder("q");
  const Gate* xo = find_gate(lib, "xor2");
  InstId d = m.add_gate(xo, {x, q});
  m.connect_latch(q, d);
  m.add_output(q, "out");
  m.check();
  Network n = m.to_network();
  EXPECT_EQ(n.num_latches(), 1u);
  n.check();
}

TEST(Cover, BuildsFromChosenMatches) {
  GateLibrary lib = make_minimal_library();
  Network sg("s");
  NodeId a = sg.add_input("a");
  NodeId b = sg.add_input("b");
  NodeId g = sg.add_nand2(a, b);
  NodeId h = sg.add_inv(g);
  sg.add_output(h, "o");
  Matcher matcher(lib, sg);
  std::vector<std::optional<Match>> chosen(sg.size());
  chosen[g] = matcher.matches_at(g, MatchClass::Standard).at(0);
  chosen[h] = matcher.matches_at(h, MatchClass::Standard).at(0);
  MappedNetlist m = build_cover(sg, chosen);
  EXPECT_EQ(m.num_gates(), 2u);
  EXPECT_TRUE(check_equivalence(sg, m.to_network()).equivalent);
}

TEST(Cover, SkipsNodesCoveredInsideMatches) {
  // and2 at the INV root covers the NAND internally: only one gate.
  GateLibrary lib = make_lib2_library();
  Network sg("s");
  NodeId a = sg.add_input("a");
  NodeId b = sg.add_input("b");
  NodeId g = sg.add_nand2(a, b);
  NodeId h = sg.add_inv(g);
  sg.add_output(h, "o");
  Matcher matcher(lib, sg);
  std::vector<std::optional<Match>> chosen(sg.size());
  for (const Match& m : matcher.matches_at(h, MatchClass::Standard))
    if (m.gate->name == "and2") chosen[h] = m;
  ASSERT_TRUE(chosen[h].has_value());
  MappedNetlist m = build_cover(sg, chosen);
  EXPECT_EQ(m.num_gates(), 1u);
  EXPECT_TRUE(check_equivalence(sg, m.to_network()).equivalent);
}

TEST(Cover, MissingMatchDetected) {
  GateLibrary lib = make_minimal_library();
  Network sg("s");
  NodeId a = sg.add_input("a");
  NodeId g = sg.add_inv(a);
  sg.add_output(g, "o");
  std::vector<std::optional<Match>> chosen(sg.size());  // none selected
  EXPECT_THROW(build_cover(sg, chosen), ContractError);
  (void)lib;
}

TEST(Cover, ConstantsPassThrough) {
  GateLibrary lib = make_minimal_library();
  Network sg("s");
  NodeId c = sg.add_constant(true);
  sg.add_output(c, "one");
  std::vector<std::optional<Match>> chosen(sg.size());
  MappedNetlist m = build_cover(sg, chosen);
  EXPECT_EQ(m.num_gates(), 0u);
  EXPECT_TRUE(check_equivalence(sg, m.to_network()).equivalent);
  (void)lib;
}

TEST(Cover, PiDrivenOutput) {
  GateLibrary lib = make_minimal_library();
  Network sg("s");
  NodeId a = sg.add_input("a");
  sg.add_output(a, "o");
  std::vector<std::optional<Match>> chosen(sg.size());
  MappedNetlist m = build_cover(sg, chosen);
  EXPECT_EQ(m.num_gates(), 0u);
  EXPECT_EQ(m.outputs()[0].name, "o");
  (void)lib;
}

}  // namespace
}  // namespace dagmap
