// Priority-cut enumeration (cutmap/cut_set.hpp) against the exhaustive
// dominance-pruned reference (cutmap/cuts.hpp): coverage when the
// priority budget is effectively unbounded, semantic correctness of the
// incrementally computed truth tables, support reduction, truncation and
// determinism, plus the shared cut helpers themselves.
#include "cutmap/cut_set.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cutmap/cuts.hpp"
#include "decomp/tech_decomp.hpp"
#include "gen/circuits.hpp"
#include "netlist/truth_table.hpp"

namespace dagmap {
namespace {

// Runs the priority enumeration over the whole subject graph with
// unit-delay arrival labels (area-flow ranking input left empty).
std::vector<CutSet> all_priority_cuts(const Network& net,
                                      const PriorityCutParams& params) {
  std::vector<CutSet> cuts(net.size());
  std::vector<double> arrival(net.size(), 0.0);
  CutScratch scratch;
  for (NodeId n : net.topo_order()) {
    if (net.is_source(n)) continue;
    compute_priority_cuts(net, n, cuts, params,
                          {arrival, {}, net.fanout_counts()}, scratch,
                          cuts[n]);
    double a = 0.0;
    for (NodeId f : net.fanins(n)) a = std::max(a, arrival[f]);
    arrival[n] = a + 1.0;
  }
  return cuts;
}

Cut to_cut(CutSet::View v) { return Cut(v.leaves.begin(), v.leaves.end()); }

// ---- shared helpers -----------------------------------------------------

TEST(CutHelpers, MergeCutsRespectsBoundAndOrder) {
  Cut out;
  EXPECT_TRUE(merge_cuts({1, 3, 5}, {2, 3, 6}, 5, out));
  EXPECT_EQ(out, (Cut{1, 2, 3, 5, 6}));
  EXPECT_FALSE(merge_cuts({1, 3, 5}, {2, 3, 6}, 4, out));
  EXPECT_TRUE(merge_cuts({}, {7}, 1, out));
  EXPECT_EQ(out, Cut{7});
}

TEST(CutHelpers, SubsetAndDominancePruning) {
  EXPECT_TRUE(cut_is_subset({2, 5}, {1, 2, 5, 9}));
  EXPECT_FALSE(cut_is_subset({2, 6}, {1, 2, 5, 9}));
  EXPECT_TRUE(cut_is_subset({}, {1}));

  std::vector<Cut> cuts;
  add_cut_pruned(cuts, {1, 2, 3});
  add_cut_pruned(cuts, {1, 2});    // dominates and evicts {1,2,3}
  add_cut_pruned(cuts, {1, 2, 4});  // dominated by {1,2}: rejected
  add_cut_pruned(cuts, {3, 4});
  ASSERT_EQ(cuts.size(), 2u);
  EXPECT_EQ(cuts[0], (Cut{1, 2}));
  EXPECT_EQ(cuts[1], (Cut{3, 4}));
}

TEST(CutHelpers, ExhaustiveEnumerationIsIrredundant) {
  Network net = tech_decompose(make_comparator(4));
  auto cuts = enumerate_cuts(net, 4);
  for (NodeId n = 0; n < net.size(); ++n) {
    for (std::size_t i = 0; i < cuts[n].size(); ++i) {
      EXPECT_LE(cuts[n][i].size(), 4u);
      EXPECT_TRUE(std::is_sorted(cuts[n][i].begin(), cuts[n][i].end()));
      for (std::size_t j = 0; j < cuts[n].size(); ++j)
        if (i != j)
          EXPECT_FALSE(cut_is_subset(cuts[n][i], cuts[n][j]))
              << "cut " << i << " dominates surviving cut " << j
              << " at node " << n;
    }
  }
}

// ---- priority vs exhaustive ---------------------------------------------

TEST(PriorityCuts, UnboundedBudgetDominatesEveryExhaustiveCut) {
  // With the budget far above the exhaustive per-node cut count, every
  // exhaustive k-feasible cut must be dominated by (have a subset among)
  // the stored priority cuts — the priority engine loses cuts only to
  // truncation, never to the merge itself.
  std::vector<Network> nets;
  nets.push_back(tech_decompose(make_comparator(4)));
  nets.push_back(tech_decompose(make_parity_tree(6)));
  nets.push_back(tech_decompose(make_random_dag(6, 40, 4, 0xC0FFEE)));
  for (const Network& net : nets) {
    auto exhaustive = enumerate_cuts(net, 4);
    std::size_t worst = 0;
    for (NodeId n = 0; n < net.size(); ++n)
      worst = std::max(worst, exhaustive[n].size());
    ASSERT_LT(worst, 256u) << "test premise: budget must exceed the "
                              "exhaustive count";
    auto priority = all_priority_cuts(net, {4, 256});
    for (NodeId n = 0; n < net.size(); ++n) {
      if (net.is_source(n)) continue;
      for (const Cut& c : exhaustive[n]) {
        bool covered = false;
        for (std::size_t i = 0; i < priority[n].size() && !covered; ++i)
          covered = cut_is_subset(to_cut(priority[n].cut(i)), c);
        EXPECT_TRUE(covered)
            << "exhaustive cut of node " << n << " not dominated";
      }
    }
  }
}

TEST(PriorityCuts, StoredCutsAreSortedBoundedAndIrredundant) {
  Network net = tech_decompose(make_random_dag(6, 50, 4, 77));
  PriorityCutParams params{4, 6};
  auto priority = all_priority_cuts(net, params);
  for (NodeId n = 0; n < net.size(); ++n) {
    if (net.is_source(n)) continue;
    const CutSet& cs = priority[n];
    // Budget plus the trivial cut, which is stored last.
    ASSERT_GE(cs.size(), 1u);
    EXPECT_LE(cs.size(), params.cut_count + 1);
    CutSet::View last = cs.cut(cs.size() - 1);
    ASSERT_EQ(last.leaves.size(), 1u);
    EXPECT_EQ(last.leaves[0], n);
    EXPECT_EQ(last.tt, 0xAAAA);
    // Among the non-trivial entries: sorted leaves, within the size
    // bound, and no earlier non-empty cut dominates a later one (empty
    // cuts are constant cones, deliberately kept alongside).
    for (std::size_t i = 0; i + 1 < cs.size(); ++i) {
      Cut ci = to_cut(cs.cut(i));
      EXPECT_LE(ci.size(), 4u);
      EXPECT_TRUE(std::is_sorted(ci.begin(), ci.end()));
      for (std::size_t j = 0; j < i; ++j) {
        Cut cj = to_cut(cs.cut(j));
        if (cj.empty() && !ci.empty()) continue;
        EXPECT_FALSE(cut_is_subset(cj, ci))
            << "dominated cut survived at node " << n;
      }
    }
  }
}

// ---- truth tables -------------------------------------------------------

// Global function of every node over the primary inputs.
std::vector<TruthTable> global_functions(const Network& net) {
  unsigned nv = static_cast<unsigned>(net.num_inputs());
  std::vector<TruthTable> g(net.size());
  unsigned pi_index = 0;
  for (NodeId pi : net.inputs()) g[pi] = TruthTable::variable(pi_index++, nv);
  for (NodeId n : net.topo_order()) {
    switch (net.kind(n)) {
      case NodeKind::PrimaryInput:
        break;
      case NodeKind::Const0:
        g[n] = TruthTable::constant(false, nv);
        break;
      case NodeKind::Const1:
        g[n] = TruthTable::constant(true, nv);
        break;
      default: {
        std::vector<TruthTable> args;
        for (NodeId f : net.fanins(n)) args.push_back(g[f]);
        g[n] = net.local_function(n).compose(args);
      }
    }
  }
  return g;
}

TEST(PriorityCuts, TruthTablesMatchGlobalSimulation) {
  // The incremental minterm-expansion tables (with support reduction and
  // 4-variable replication) must agree with the network semantics: on
  // every primary-input assignment, evaluating a cut's table on its
  // leaves' simulated values yields the root's simulated value.
  std::vector<Network> nets;
  nets.push_back(tech_decompose(make_comparator(4)));
  nets.push_back(tech_decompose(make_parity_tree(6)));
  nets.push_back(tech_decompose(make_random_dag(7, 60, 5, 12345)));
  for (const Network& net : nets) {
    ASSERT_LE(net.num_inputs(), 10u);
    std::vector<TruthTable> g = global_functions(net);
    auto priority = all_priority_cuts(net, {4, 8});
    std::size_t masks = std::size_t{1} << net.num_inputs();
    for (NodeId n = 0; n < net.size(); ++n) {
      if (net.is_source(n)) continue;
      const CutSet& cs = priority[n];
      for (std::size_t i = 0; i < cs.size(); ++i) {
        CutSet::View v = cs.cut(i);
        for (std::size_t mask = 0; mask < masks; ++mask) {
          unsigned m = 0;
          for (std::size_t j = 0; j < v.leaves.size(); ++j)
            m |= static_cast<unsigned>(g[v.leaves[j]].bit(mask)) << j;
          EXPECT_EQ((v.tt >> m) & 1u, g[n].bit(mask) ? 1u : 0u)
              << "cut " << i << " of node " << n << " wrong on minterm "
              << mask;
        }
      }
    }
  }
}

TEST(PriorityCuts, SupportReductionDropsVacuousLeaves) {
  // f = NAND(n1, NAND(a, n1)) with n1 = NAND(a, b) simplifies to just
  // `a`: the {a, b} cut's table is vacuous in b and must be reduced to
  // the single-leaf cut {a} with the identity table.
  Network net("vacuous");
  NodeId a = net.add_input("a");
  NodeId b = net.add_input("b");
  NodeId n1 = net.add_nand2(a, b);
  NodeId n2 = net.add_nand2(a, n1);
  NodeId f = net.add_nand2(n1, n2);
  net.add_output(f, "o");

  auto priority = all_priority_cuts(net, {4, 16});
  bool found_identity = false;
  for (std::size_t i = 0; i < priority[f].size(); ++i) {
    CutSet::View v = priority[f].cut(i);
    for (NodeId leaf : v.leaves) EXPECT_NE(leaf, b) << "vacuous leaf kept";
    if (v.leaves.size() == 1 && v.leaves[0] == a) {
      found_identity = true;
      EXPECT_EQ(v.tt, 0xAAAA);
    }
  }
  EXPECT_TRUE(found_identity) << "reduced cut {a} missing";
}

TEST(PriorityCuts, TruncationRespectsBudgetAndRecomputationIsIdentical) {
  Network net = tech_decompose(make_random_dag(8, 80, 6, 991));
  PriorityCutParams params{4, 2};
  auto first = all_priority_cuts(net, params);
  auto second = all_priority_cuts(net, params);
  for (NodeId n = 0; n < net.size(); ++n) {
    if (net.is_source(n)) continue;
    EXPECT_LE(first[n].size(), params.cut_count + 1);
    ASSERT_EQ(first[n].size(), second[n].size());
    for (std::size_t i = 0; i < first[n].size(); ++i) {
      CutSet::View x = first[n].cut(i);
      CutSet::View y = second[n].cut(i);
      EXPECT_EQ(to_cut(x), to_cut(y));
      EXPECT_EQ(x.tt, y.tt);
    }
  }
}

}  // namespace
}  // namespace dagmap
