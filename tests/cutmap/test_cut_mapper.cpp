// The priority-cut Boolean mapping engine: correctness (simulation
// equivalence, delay consistency), the delay-dominance guarantee against
// the structural backend, area-recovery rounds, and the invariance knobs
// (recycled vs recomputed cuts, shared NPN index).
#include "cutmap/cut_mapper.hpp"

#include <gtest/gtest.h>

#include "boolmatch/npn_index.hpp"
#include "core/dag_mapper.hpp"
#include "decomp/tech_decomp.hpp"
#include "gen/circuits.hpp"
#include "library/standard_libs.hpp"
#include "sim/simulator.hpp"
#include "timing/timing.hpp"

namespace dagmap {
namespace {

void expect_same_result(const MapResult& a, const MapResult& b) {
  ASSERT_EQ(a.label.size(), b.label.size());
  for (std::size_t i = 0; i < a.label.size(); ++i)
    EXPECT_EQ(a.label[i], b.label[i]) << "label of node " << i;
  EXPECT_EQ(a.optimal_delay, b.optimal_delay);
  EXPECT_EQ(a.netlist.num_gates(), b.netlist.num_gates());
  EXPECT_EQ(a.netlist.total_area(), b.netlist.total_area());
  EXPECT_EQ(a.netlist.gate_histogram(), b.netlist.gate_histogram());
}

TEST(CutMap, CorrectOnSmallSuite) {
  GateLibrary lib = make_lib2_library();
  for (const auto& b : make_small_suite()) {
    Network sg = tech_decompose(b.network);
    MapResult r = cut_map(sg, lib);
    r.netlist.check();
    EXPECT_TRUE(check_equivalence(sg, r.netlist.to_network()).equivalent)
        << b.name;
    EXPECT_NEAR(circuit_delay(r.netlist), r.optimal_delay, 1e-9) << b.name;
  }
}

TEST(CutMap, NeverWorseThanStructuralBackend) {
  // The theorem behind fuzz invariant #9: per node the candidate set is
  // the union of the structural matches and the NPN cut matches, so by
  // induction every label — and hence the mapped delay — is never worse
  // than dag_map's on the same subject and library.
  GateLibrary lib = make_lib2_library();
  for (const auto& b : make_small_suite()) {
    Network sg = tech_decompose(b.network);
    MapResult rs = dag_map(sg, lib);
    MapResult rc = cut_map(sg, lib);
    ASSERT_EQ(rs.label.size(), rc.label.size());
    for (std::size_t i = 0; i < rs.label.size(); ++i)
      EXPECT_LE(rc.label[i], rs.label[i] + 1e-9)
          << b.name << " node " << i;
    EXPECT_LE(rc.optimal_delay, rs.optimal_delay + 1e-9) << b.name;
  }
}

TEST(CutMap, FindsXorRegardlessOfDecompositionShape) {
  // Boolean matching is shape-insensitive: both the balanced and the
  // chain decomposition of XOR map to the xor2 gate.
  GateLibrary lib = make_lib2_library();
  for (DecompShape shape : {DecompShape::Balanced, DecompShape::Chain}) {
    Network src("x");
    NodeId a = src.add_input("a");
    NodeId b = src.add_input("b");
    src.add_output(src.add_xor(a, b), "o");
    TechDecompOptions opt;
    opt.shape = shape;
    Network sg = tech_decompose(src, opt);
    MapResult r = cut_map(sg, lib);
    EXPECT_EQ(r.netlist.gate_histogram().count("xor2"), 1u);
    EXPECT_TRUE(check_equivalence(sg, r.netlist.to_network()).equivalent);
  }
}

TEST(CutMap, StrictlyBeatsStructuralOnHiddenMatches) {
  // A chain-decomposed parity tree hides the XOR shapes the structural
  // pattern generator expects; the NPN cut matches find them anyway.
  GateLibrary lib = make_lib2_library();
  TechDecompOptions opt;
  opt.shape = DecompShape::Chain;
  Network sg = tech_decompose(make_parity_tree(8), opt);
  MapResult rs = dag_map(sg, lib);
  MapResult rc = cut_map(sg, lib);
  EXPECT_LT(rc.optimal_delay, rs.optimal_delay - 1e-9);
  EXPECT_TRUE(check_equivalence(sg, rc.netlist.to_network()).equivalent);
}

TEST(CutMap, AreaRoundsKeepTheDelayBound) {
  GateLibrary lib = make_lib2_library();
  Network sg = tech_decompose(make_alu(6));
  MapResult r1 = cut_map(sg, lib);

  CutMapOptions tight;
  tight.rounds = 3;  // delay_factor 1.0: zero slack
  MapResult r3 = cut_map(sg, lib, tight);
  EXPECT_EQ(r3.optimal_delay, r1.optimal_delay);
  EXPECT_NEAR(circuit_delay(r3.netlist), r1.optimal_delay, 1e-9);
  EXPECT_TRUE(check_equivalence(sg, r3.netlist.to_network()).equivalent);

  CutMapOptions slack;
  slack.rounds = 3;
  slack.delay_factor = 1.5;
  MapResult rs = cut_map(sg, lib, slack);
  EXPECT_LE(circuit_delay(rs.netlist),
            r1.optimal_delay * 1.5 + 1e-9);
  EXPECT_TRUE(check_equivalence(sg, rs.netlist.to_network()).equivalent);
}

TEST(CutMap, RecycledAndRecomputedCutsAreBitIdentical) {
  // recycle_cuts is a memory/time knob, never a result knob: the area
  // rounds recompute cut sets from the frozen phase-1 ranking inputs.
  GateLibrary lib = make_lib2_library();
  Network sg = tech_decompose(make_comparator(8));
  CutMapOptions on;
  on.rounds = 3;
  on.recycle_cuts = true;
  CutMapOptions off = on;
  off.recycle_cuts = false;
  expect_same_result(cut_map(sg, lib, on), cut_map(sg, lib, off));
}

TEST(CutMap, SharedNpnIndexIsBitIdentical) {
  GateLibrary lib = make_lib2_library();
  Network sg = tech_decompose(make_hamming_decoder(8));
  NpnLibraryIndex index(lib);
  EXPECT_GT(index.num_entries(), 0u);
  CutMapOptions shared;
  shared.npn_index = &index;
  expect_same_result(cut_map(sg, lib, {}), cut_map(sg, lib, shared));
}

TEST(CutMap, SequentialSubjects) {
  GateLibrary lib = make_lib2_library();
  Network sg = tech_decompose(make_sequential_pipeline(3, 6, 41));
  MapResult r = cut_map(sg, lib);
  EXPECT_EQ(r.netlist.latches().size(), sg.num_latches());
  EXPECT_TRUE(check_equivalence(sg, r.netlist.to_network()).equivalent);
}

TEST(CutMap, SmallCutBudgetsStayComplete) {
  // Even with the weakest complete library, a 2-leaf cut bound and a
  // single priority cut per node, mapping must succeed (the trivial cut
  // and the structural NAND2/INV matches guarantee coverage).
  GateLibrary lib = make_minimal_library();
  Network sg = tech_decompose(make_parity_tree(8));
  CutMapOptions opt;
  opt.cut_size = 2;
  opt.cut_count = 1;
  MapResult r = cut_map(sg, lib, opt);
  EXPECT_TRUE(check_equivalence(sg, r.netlist.to_network()).equivalent);
}

TEST(CutMap, ReportsWorkAndDuplicationStats) {
  GateLibrary lib = make_lib2_library();
  Network sg = tech_decompose(make_comparator(6));
  MapResult r = cut_map(sg, lib);
  EXPECT_GT(r.matches_enumerated, 0u);
  EXPECT_GT(r.match_attempts, 0u);
  EXPECT_GT(r.covered_distinct, 0u);
  EXPECT_GE(r.covered_instances, r.covered_distinct);
  EXPECT_GT(r.cpu_seconds, 0.0);
}

}  // namespace
}  // namespace dagmap
