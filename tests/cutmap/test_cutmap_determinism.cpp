// Priority-cut backend determinism: bit-identical results at 1/2/8
// worker threads, with and without the partitioned pipeline, and with
// cut recycling on or off.  This binary carries the `tsan` CTest label;
// build with -DDAGMAP_SANITIZE=thread to sweep the parallel cut
// enumeration and labeling under ThreadSanitizer.
#include <gtest/gtest.h>

#include "cutmap/cut_mapper.hpp"
#include "decomp/tech_decomp.hpp"
#include "gen/circuits.hpp"
#include "library/standard_libs.hpp"

namespace dagmap {
namespace {

void expect_identical(const MapResult& a, const MapResult& b,
                      const char* what) {
  ASSERT_EQ(a.label.size(), b.label.size());
  for (std::size_t i = 0; i < a.label.size(); ++i)
    ASSERT_EQ(a.label[i], b.label[i]) << what << ": label of node " << i;
  EXPECT_EQ(a.optimal_delay, b.optimal_delay) << what;
  EXPECT_EQ(a.netlist.num_gates(), b.netlist.num_gates()) << what;
  EXPECT_EQ(a.netlist.total_area(), b.netlist.total_area()) << what;
  EXPECT_EQ(a.netlist.gate_histogram(), b.netlist.gate_histogram()) << what;
  EXPECT_EQ(a.matches_enumerated, b.matches_enumerated) << what;
}

void sweep(const Network& subject, const GateLibrary& lib,
           CutMapOptions base) {
  base.num_threads = 1;
  base.partition_mode = PartitionMode::Off;
  MapResult seq = cut_map(subject, lib, base);
  for (unsigned threads : {2u, 8u}) {
    CutMapOptions o = base;
    o.num_threads = threads;
    expect_identical(seq, cut_map(subject, lib, o), "threads");
  }
  for (unsigned threads : {1u, 8u}) {
    CutMapOptions o = base;
    o.num_threads = threads;
    o.partition_mode = PartitionMode::On;
    o.partition_window = 64;
    MapResult part = cut_map(subject, lib, o);
    EXPECT_TRUE(part.partitioned);
    expect_identical(seq, part, "partitioned");
  }
}

TEST(CutMapDeterminism, AcrossThreadCountsAndPartitioningOnSuite) {
  GateLibrary lib = make_lib2_library();
  for (const BenchmarkCircuit& bc : make_small_suite()) {
    SCOPED_TRACE(bc.name);
    sweep(tech_decompose(bc.network), lib, {});
  }
}

TEST(CutMapDeterminism, WithAreaRoundsAndRecycling) {
  GateLibrary lib = make_lib2_library();
  Network subject = tech_decompose(make_alu(8));
  CutMapOptions rounds;
  rounds.rounds = 3;
  rounds.delay_factor = 1.2;
  sweep(subject, lib, rounds);
  CutMapOptions norecycle = rounds;
  norecycle.recycle_cuts = false;
  sweep(subject, lib, norecycle);
}

TEST(CutMapDeterminism, WithRichLibraryAndTightCutBudget) {
  GateLibrary lib = make_44_library(2);
  Network subject = tech_decompose(make_array_multiplier(6));
  CutMapOptions o;
  o.cut_count = 4;
  sweep(subject, lib, o);
}

}  // namespace
}  // namespace dagmap
