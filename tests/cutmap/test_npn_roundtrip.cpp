// NPN canonization round trips on random 4-variable functions, the
// early-exiting `npn_transform_to` used by the compiled-library hint
// path, and the 5/6-variable `canon_key` fallback semantics the cut
// engine's canonical hints rely on.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "boolmatch/npn.hpp"
#include "supergate/canon.hpp"

namespace dagmap {
namespace {

NpnTransform random_transform(std::mt19937_64& rng) {
  NpnTransform t;
  for (unsigned i = 3; i > 0; --i)
    std::swap(t.perm[i], t.perm[rng() % (i + 1)]);
  t.input_negate = static_cast<std::uint8_t>(rng() & 0xF);
  t.output_negate = (rng() & 1) != 0;
  return t;
}

TEST(NpnRoundTrip, ApplyInverseIsIdentity) {
  std::mt19937_64 rng(42);
  for (int i = 0; i < 500; ++i) {
    std::uint16_t tt = static_cast<std::uint16_t>(rng());
    NpnTransform t = random_transform(rng);
    EXPECT_EQ(npn_apply(npn_apply(tt, t), npn_inverse(t)), tt);
    EXPECT_EQ(npn_apply(npn_apply(tt, npn_inverse(t)), t), tt);
  }
}

TEST(NpnRoundTrip, ComposeMatchesSequentialApplication) {
  std::mt19937_64 rng(43);
  for (int i = 0; i < 500; ++i) {
    std::uint16_t tt = static_cast<std::uint16_t>(rng());
    NpnTransform a = random_transform(rng);
    NpnTransform b = random_transform(rng);
    EXPECT_EQ(npn_apply(tt, npn_compose(a, b)),
              npn_apply(npn_apply(tt, a), b));
  }
}

TEST(NpnRoundTrip, CanonicalIsClassInvariantAndReached) {
  std::mt19937_64 rng(44);
  for (int i = 0; i < 200; ++i) {
    std::uint16_t tt = static_cast<std::uint16_t>(rng());
    NpnTransform to_canon;
    std::uint16_t canon = npn_canonical(tt, &to_canon);
    // The recorded transform reaches the canonical representative.
    EXPECT_EQ(npn_apply(tt, to_canon), canon);
    // Every NPN-equivalent table canonicalizes to the same value, and
    // the canonical form is a fixpoint.
    NpnTransform t = random_transform(rng);
    EXPECT_EQ(npn_canonical(npn_apply(tt, t)), canon);
    EXPECT_EQ(npn_canonical(canon), canon);
  }
}

TEST(NpnRoundTrip, TransformToMatchesFullScan) {
  // With the canonical representative as target, the early-exiting
  // search must find exactly the transform the full minimum scan
  // records (same enumeration order, first achiever wins) — this is
  // what makes the compiled-library hint path bit-identical to the
  // unhinted one.
  std::mt19937_64 rng(45);
  for (int i = 0; i < 200; ++i) {
    std::uint16_t tt = static_cast<std::uint16_t>(rng());
    NpnTransform full;
    std::uint16_t canon = npn_canonical(tt, &full);
    NpnTransform fast;
    ASSERT_TRUE(npn_transform_to(tt, canon, &fast));
    EXPECT_EQ(fast.perm, full.perm);
    EXPECT_EQ(fast.input_negate, full.input_negate);
    EXPECT_EQ(fast.output_negate, full.output_negate);
  }
}

TEST(NpnRoundTrip, TransformToRejectsInequivalentTargets) {
  NpnTransform t;
  // Constant 0's NPN class is {0x0000, 0xFFFF}; anything else must be
  // rejected without touching the output transform.
  EXPECT_FALSE(npn_transform_to(0x0000, 0x0001, &t));
  EXPECT_TRUE(npn_transform_to(0x0000, 0xFFFF, &t));
  EXPECT_EQ(npn_apply(0x0000, t), 0xFFFF);
  // AND2 (0x8888) and XOR2 (0x6666) are in different classes.
  EXPECT_FALSE(npn_transform_to(0x8888, npn_canonical(0x6666), &t));
}

TEST(NpnRoundTrip, CanonKeyUpToFourVarsUsesNpnClasses) {
  std::mt19937_64 rng(46);
  for (int i = 0; i < 200; ++i) {
    std::uint16_t tt = static_cast<std::uint16_t>(rng());
    CanonKey k = canon_key(tt, 4);
    EXPECT_EQ(k.num_vars, 4u);
    EXPECT_EQ(k.tt, npn_canonical(tt));
    // NPN-equivalent functions share a key.
    CanonKey k2 = canon_key(npn_apply(tt, random_transform(rng)), 4);
    EXPECT_EQ(k, k2);
  }
  // Narrow functions are padded with replicated don't-cares, so a
  // 2-variable function keys identically however it is presented.
  EXPECT_EQ(canon_key(0x6, 2), canon_key(0x6666, 4));
}

TEST(NpnRoundTrip, CanonKeyFiveSixVarsIsExactTableFallback) {
  // 5- and 6-variable functions key by their exact table: stable and
  // sound for dedup (never merges distinct functions), but only
  // identical tables collide — permuted variants keep separate keys.
  std::mt19937_64 rng(47);
  for (int i = 0; i < 100; ++i) {
    std::uint64_t tt5 = rng() & 0xFFFFFFFFull;
    CanonKey k5 = canon_key(tt5, 5);
    EXPECT_EQ(k5.num_vars, 5u);
    EXPECT_EQ(k5.tt, tt5);
    EXPECT_EQ(k5, canon_key(tt5, 5));  // round trip is stable

    std::uint64_t tt6 = rng();
    CanonKey k6 = canon_key(tt6, 6);
    EXPECT_EQ(k6.num_vars, 6u);
    EXPECT_EQ(k6.tt, tt6);
    // 5-var and 6-var keys never collide even on equal bits.
    EXPECT_FALSE(canon_key(tt5, 5) == canon_key(tt5, 6));
  }
  // The memoized cache agrees with the direct computation on both sides
  // of the 4-variable boundary.
  CanonCache cache;
  EXPECT_EQ(cache.key(0x8888, 4), canon_key(0x8888, 4));
  EXPECT_EQ(cache.key(0x8888, 4), canon_key(0x8888, 4));  // memo hit
  EXPECT_EQ(cache.key(0x123456789ABCDEF0ull, 6),
            canon_key(0x123456789ABCDEF0ull, 6));
}

}  // namespace
}  // namespace dagmap
