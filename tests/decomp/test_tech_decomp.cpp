// Tests for technology decomposition (network -> NAND2/INV subject graph).
#include "decomp/tech_decomp.hpp"

#include <gtest/gtest.h>

#include "io/blif.hpp"
#include "sim/simulator.hpp"

namespace dagmap {
namespace {

Network full_adder() {
  Network n("fa");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId cin = n.add_input("cin");
  NodeId s1 = n.add_xor(a, b);
  NodeId sum = n.add_xor(s1, cin);
  NodeId cout = n.add_maj3(a, b, cin);
  n.add_output(sum, "sum");
  n.add_output(cout, "cout");
  return n;
}

TEST(TechDecomp, ProducesSubjectGraph) {
  Network sg = tech_decompose(full_adder());
  EXPECT_TRUE(sg.is_subject_graph());
  EXPECT_TRUE(sg.is_k_bounded(2));
  EXPECT_EQ(sg.num_inputs(), 3u);
  EXPECT_EQ(sg.num_outputs(), 2u);
}

TEST(TechDecomp, PreservesFunction) {
  Network src = full_adder();
  Network sg = tech_decompose(src);
  auto r = check_equivalence(src, sg);
  EXPECT_TRUE(r.equivalent)
      << "cex=" << r.counterexample_hex() << " out=" << r.failing_output;
}

TEST(TechDecomp, ChainShapeAlsoCorrect) {
  Network src = full_adder();
  TechDecompOptions opt;
  opt.shape = DecompShape::Chain;
  Network sg = tech_decompose(src, opt);
  EXPECT_TRUE(sg.is_subject_graph());
  EXPECT_TRUE(check_equivalence(src, sg).equivalent);
}

TEST(TechDecomp, StructuralHashingSharesLogic) {
  // Two identical AND nodes must lower to one shared NAND+INV pair.
  Network n("share");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId g1 = n.add_and(a, b);
  NodeId g2 = n.add_and(a, b);
  NodeId o = n.add_or(g1, g2);
  n.add_output(o, "o");
  Network sg = tech_decompose(n);
  // or(x,x) with x = and(a,b): strash reduces the whole thing to
  // inv(nand(a,b)) ... or(x,x) = nand(!x,!x) = nand collapses to inv(!x)=x.
  EXPECT_LE(sg.num_internal(), 2u);
  EXPECT_TRUE(check_equivalence(n, sg).equivalent);
}

TEST(TechDecomp, ConstantPropagation) {
  Network n("consts");
  NodeId a = n.add_input("a");
  NodeId c1 = n.add_constant(true);
  NodeId g = n.add_and(a, c1);  // = a
  NodeId c0 = n.add_constant(false);
  NodeId h = n.add_or(g, c0);  // = a
  n.add_output(h, "o");
  Network sg = tech_decompose(n);
  EXPECT_TRUE(check_equivalence(n, sg).equivalent);
}

TEST(TechDecomp, InverterChainsCollapse) {
  Network n("invs");
  NodeId a = n.add_input("a");
  NodeId x = n.add_inv(a);
  NodeId y = n.add_inv(x);
  NodeId z = n.add_inv(y);
  n.add_output(z, "o");
  Network sg = tech_decompose(n);
  EXPECT_EQ(sg.num_internal(), 1u);  // single inverter
  EXPECT_TRUE(check_equivalence(n, sg).equivalent);
}

TEST(TechDecomp, WideGatesBecomeTrees) {
  Network n("wide");
  std::vector<NodeId> ins;
  for (int i = 0; i < 8; ++i)
    ins.push_back(n.add_input("i" + std::to_string(i)));
  NodeId g = n.add_and(ins);
  n.add_output(g, "o");
  Network sg = tech_decompose(n);
  EXPECT_TRUE(sg.is_subject_graph());
  EXPECT_TRUE(check_equivalence(n, sg).equivalent);
  // Balanced shape: depth of an 8-input AND tree is 3 NAND/INV levels *
  // at most 2 nodes per level.
  EXPECT_LE(sg.depth(), 7u);
}

TEST(TechDecomp, SequentialCircuitKeepsLatches) {
  Network n("seq");
  NodeId x = n.add_input("x");
  NodeId l = n.add_latch_placeholder("state");
  NodeId nxt = n.add_xor(x, l);
  n.connect_latch(l, nxt);
  n.add_output(nxt, "o");
  Network sg = tech_decompose(n);
  EXPECT_EQ(sg.num_latches(), 1u);
  EXPECT_TRUE(sg.is_subject_graph());
  EXPECT_TRUE(check_equivalence(n, sg).equivalent);
}

TEST(TechDecomp, MuxAndComplexNodes) {
  Network n("mux");
  NodeId s = n.add_input("s");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId m = n.add_mux(s, a, b);
  n.add_output(m, "o");
  Network sg = tech_decompose(n);
  EXPECT_TRUE(check_equivalence(n, sg).equivalent);
}

TEST(TechDecomp, BlifRoundTripThroughDecomposition) {
  const char* kBlif =
      ".model m\n.inputs a b c d\n.outputs o\n"
      ".names a b c d o\n11-- 1\n--11 1\n1-1- 1\n.end\n";
  Network src = parse_blif(kBlif);
  Network sg = tech_decompose(src);
  EXPECT_TRUE(sg.is_subject_graph());
  EXPECT_TRUE(check_equivalence(src, sg).equivalent);
  // And the subject graph survives a BLIF round trip.
  Network back = parse_blif(write_blif(sg));
  EXPECT_TRUE(check_equivalence(sg, back).equivalent);
}

TEST(TechDecomp, ConstantOutputs) {
  Network n("k");
  NodeId a = n.add_input("a");
  NodeId na = n.add_inv(a);
  NodeId taut = n.add_or(a, na);  // constant 1
  n.add_output(taut, "one");
  Network sg = tech_decompose(n);
  EXPECT_TRUE(check_equivalence(n, sg).equivalent);
}

}  // namespace
}  // namespace dagmap
