// Unit + property tests for the Minato–Morreale ISOP extraction.
#include "decomp/isop.hpp"

#include <gtest/gtest.h>

namespace dagmap {
namespace {

TEST(Isop, Constants) {
  EXPECT_TRUE(compute_isop(TruthTable::constant(false, 3)).empty());
  auto c1 = compute_isop(TruthTable::constant(true, 3));
  ASSERT_EQ(c1.size(), 1u);
  EXPECT_EQ(c1[0].num_literals(), 0u);
}

TEST(Isop, SingleVariable) {
  auto cover = compute_isop(TruthTable::variable(0, 1));
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].pos_mask, 1u);
  EXPECT_EQ(cover[0].neg_mask, 0u);
  auto cover_n = compute_isop(~TruthTable::variable(0, 1));
  ASSERT_EQ(cover_n.size(), 1u);
  EXPECT_EQ(cover_n[0].neg_mask, 1u);
}

TEST(Isop, AndOrXor) {
  TruthTable a = TruthTable::variable(0, 2), b = TruthTable::variable(1, 2);
  EXPECT_EQ(compute_isop(a & b).size(), 1u);
  EXPECT_EQ(compute_isop(a | b).size(), 2u);
  EXPECT_EQ(compute_isop(a ^ b).size(), 2u);
}

TEST(Isop, MajorityHasThreeCubes) {
  TruthTable a = TruthTable::variable(0, 3), b = TruthTable::variable(1, 3),
             c = TruthTable::variable(2, 3);
  TruthTable maj = (a & b) | (b & c) | (a & c);
  auto cover = compute_isop(maj);
  EXPECT_EQ(cover.size(), 3u);
  EXPECT_EQ(cover_to_truth_table(cover, 3), maj);
}

TEST(Isop, CoverToExprMatches) {
  TruthTable f = TruthTable::from_bits(0b0110'1001, 3);  // XNOR3-ish
  auto cover = compute_isop(f);
  Expr e = cover_to_expr(cover, {"a", "b", "c"});
  EXPECT_EQ(expr_truth_table(e, {"a", "b", "c"}), f);
}

TEST(Isop, EmptyCoverIsConst0Expr) {
  Expr e = cover_to_expr({}, {"a"});
  EXPECT_EQ(e.op, Expr::Op::Const0);
}

// Property: for pseudo-random functions across widths, the ISOP cover
// reproduces the function exactly and contains no duplicate cubes.
class IsopProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(IsopProperty, CoverEqualsFunction) {
  unsigned nv = GetParam();
  std::uint64_t state = 0xC0FFEE ^ (nv * 7919);
  for (int trial = 0; trial < 20; ++trial) {
    TruthTable f(nv);
    for (std::size_t m = 0; m < f.num_minterms(); ++m) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      f.set_bit(m, (state >> 61) & 1);
    }
    auto cover = compute_isop(f);
    EXPECT_EQ(cover_to_truth_table(cover, nv), f) << "nv=" << nv;
    for (std::size_t i = 0; i < cover.size(); ++i) {
      EXPECT_EQ(cover[i].pos_mask & cover[i].neg_mask, 0u);
      for (std::size_t j = i + 1; j < cover.size(); ++j)
        EXPECT_FALSE(cover[i] == cover[j]) << "duplicate cube";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, IsopProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 10u));

TEST(Isop, WideSparseFunction) {
  // A 12-var function with a handful of minterms stays a small cover.
  TruthTable f(12);
  f.set_bit(0x0FF, true);
  f.set_bit(0xABC, true);
  f.set_bit(0x123, true);
  auto cover = compute_isop(f);
  EXPECT_LE(cover.size(), 3u);
  EXPECT_EQ(cover_to_truth_table(cover, 12), f);
}

TEST(Isop, TruthTableToExprRoundTrip) {
  TruthTable f = TruthTable::from_bits(0b1101'0110'0010'1011, 4);
  std::vector<std::string> vars{"p", "q", "r", "s"};
  Expr e = truth_table_to_expr(f, vars);
  EXPECT_EQ(expr_truth_table(e, vars), f);
}

}  // namespace
}  // namespace dagmap
