// Tests for FlowMap: correctness, depth optimality cross-checks between
// the max-flow engine and exhaustive cut enumeration, and monotonicity.
#include "lutmap/flowmap.hpp"

#include <gtest/gtest.h>

#include "decomp/tech_decomp.hpp"
#include "gen/circuits.hpp"
#include "netlist/assert.hpp"
#include "sim/simulator.hpp"

namespace dagmap {
namespace {

Network subject_of(Network n) { return tech_decompose(n); }

TEST(FlowMap, TrivialSingleLut) {
  Network n("t");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId g = n.add_nand2(a, b);
  NodeId h = n.add_inv(g);
  n.add_output(h, "o");
  LutMapResult r = flowmap(n, {.k = 4});
  EXPECT_EQ(r.depth, 1u);
  EXPECT_EQ(r.num_luts, 1u);
  EXPECT_TRUE(check_equivalence(n, r.netlist).equivalent);
}

TEST(FlowMap, DepthBeatsNaiveLevels) {
  // An 8-input AND tree has NAND/INV depth ~6 but k=4 LUT depth 2.
  Network src("and8");
  std::vector<NodeId> ins;
  for (int i = 0; i < 8; ++i)
    ins.push_back(src.add_input("i" + std::to_string(i)));
  src.add_output(src.add_and(std::span<const NodeId>(ins)), "o");
  Network sg = subject_of(std::move(src));
  LutMapResult r = flowmap(sg, {.k = 4});
  EXPECT_EQ(r.depth, 2u);
  EXPECT_TRUE(check_equivalence(sg, r.netlist).equivalent);
}

TEST(FlowMap, LutsRespectK) {
  Network sg = subject_of(make_alu(4));
  for (unsigned k : {3u, 4u, 5u, 6u}) {
    LutMapResult r = flowmap(sg, {.k = k});
    EXPECT_TRUE(r.netlist.is_k_bounded(k)) << k;
    EXPECT_TRUE(check_equivalence(sg, r.netlist).equivalent) << k;
  }
}

TEST(FlowMap, FlowAndCutEnumLabelsAgree) {
  // The two engines are independent implementations of the same optimum;
  // their depths must agree everywhere.
  std::vector<Network> nets;
  nets.push_back(subject_of(make_ripple_carry_adder(8)));
  nets.push_back(subject_of(make_array_multiplier(4)));
  nets.push_back(subject_of(make_comparator(8)));
  nets.push_back(subject_of(make_random_dag(12, 150, 8, 3)));
  for (const Network& sg : nets) {
    for (unsigned k : {3u, 4u, 5u}) {
      LutMapResult rf = flowmap(sg, {.k = k, .algorithm = LutMapOptions::Algorithm::MaxFlow});
      LutMapResult rc = flowmap(sg, {.k = k, .algorithm = LutMapOptions::Algorithm::CutEnum});
      EXPECT_EQ(rf.depth, rc.depth) << sg.name() << " k=" << k;
      ASSERT_EQ(rf.label.size(), rc.label.size());
      for (std::size_t i = 0; i < rf.label.size(); ++i)
        EXPECT_EQ(rf.label[i], rc.label[i])
            << sg.name() << " k=" << k << " node " << i;
    }
  }
}

TEST(FlowMap, DepthMonotoneInK) {
  Network sg = subject_of(make_alu(8));
  unsigned prev = ~0u;
  for (unsigned k : {2u, 3u, 4u, 5u, 6u}) {
    LutMapResult r = flowmap(sg, {.k = k});
    EXPECT_LE(r.depth, prev) << k;
    prev = r.depth;
  }
}

TEST(FlowMap, LabelsAreMonotoneAlongEdges) {
  Network sg = subject_of(make_comparator(8));
  LutMapResult r = flowmap(sg, {.k = 4});
  for (NodeId n = 0; n < sg.size(); ++n) {
    if (sg.is_source(n) || sg.kind(n) == NodeKind::Latch) continue;
    for (NodeId f : sg.fanins(n))
      EXPECT_LE(r.label[f], r.label[n]) << n;
  }
}

TEST(FlowMap, DuplicationAllowed) {
  // A diamond with a shared middle node: LUT covering can absorb the
  // shared node into both outputs' LUTs.
  Network sg("diamond");
  NodeId a = sg.add_input("a");
  NodeId b = sg.add_input("b");
  NodeId c = sg.add_input("c");
  NodeId d = sg.add_input("d");
  NodeId mid = sg.add_nand2(a, b);
  sg.add_output(sg.add_nand2(mid, c), "o1");
  sg.add_output(sg.add_nand2(mid, d), "o2");
  LutMapResult r = flowmap(sg, {.k = 3});
  EXPECT_EQ(r.depth, 1u);
  EXPECT_EQ(r.num_luts, 2u);  // mid duplicated into both LUTs
  EXPECT_TRUE(check_equivalence(sg, r.netlist).equivalent);
}

TEST(FlowMap, SequentialNetworksSupported) {
  Network sg = subject_of(make_sequential_pipeline(3, 6, 11));
  LutMapResult r = flowmap(sg, {.k = 4});
  EXPECT_EQ(r.netlist.num_latches(), sg.num_latches());
  EXPECT_TRUE(check_equivalence(sg, r.netlist).equivalent);
}

TEST(FlowMap, RejectsUnboundedInput) {
  Network n("wide");
  std::vector<NodeId> ins;
  for (int i = 0; i < 6; ++i)
    ins.push_back(n.add_input("i" + std::to_string(i)));
  n.add_output(n.add_and(std::span<const NodeId>(ins)), "o");
  EXPECT_THROW(flowmap(n, {.k = 4}), ContractError);  // 6-input node, k=4
}

TEST(FlowMap, RandomDagsRoundTrip) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    Network sg = subject_of(make_random_dag(10, 120, 6, seed));
    LutMapResult r = flowmap(sg, {.k = 4});
    EXPECT_TRUE(check_equivalence(sg, r.netlist).equivalent) << seed;
    // Depth is bounded by the NAND/INV depth.
    EXPECT_LE(r.depth, sg.depth()) << seed;
  }
}

TEST(FlowMap, AreaRecoveryKeepsDepthAndSavesLuts) {
  for (const char* which : {"alu", "mult", "rand"}) {
    Network sg = std::string(which) == "alu"
                     ? subject_of(make_alu(8))
                 : std::string(which) == "mult"
                     ? subject_of(make_array_multiplier(6))
                     : subject_of(make_random_dag(16, 300, 12, 5));
    LutMapOptions plain{.k = 4};
    LutMapOptions recover{.k = 4};
    recover.area_recovery = true;
    LutMapResult r1 = flowmap(sg, plain);
    LutMapResult r2 = flowmap(sg, recover);
    EXPECT_EQ(r2.depth, r1.depth) << which;
    EXPECT_LE(r2.num_luts, r1.num_luts) << which;
    EXPECT_TRUE(check_equivalence(sg, r2.netlist).equivalent) << which;
    // Mapped depth really is preserved, not just reported.
    EXPECT_LE(r2.netlist.depth(), r1.depth) << which;
  }
}

TEST(FlowMap, UnitDepthForSmallCones) {
  // Any function of <= k inputs is one LUT.
  Network sg = subject_of(make_parity_tree(4));
  LutMapResult r = flowmap(sg, {.k = 4});
  EXPECT_EQ(r.depth, 1u);
  EXPECT_EQ(r.num_luts, 1u);
}

}  // namespace
}  // namespace dagmap
