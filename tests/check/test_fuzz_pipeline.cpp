// The metamorphic fuzz suite (CTest label `fuzz`).  Each invariant gets a
// dedicated test over its own seed range, plus a full-suite quick sweep;
// together they cover well over 500 seeded instances and finish in a few
// seconds.  FuzzLong.DeepSweep is the `fuzz-long` tier: it does real work
// only when DAGMAP_FUZZ_LONG is set (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <cstdlib>

#include "check/fuzz_pipeline.hpp"

namespace dagmap {
namespace {

// Runs `count` seeds with only `mask` enabled; every instance must hold.
void expect_clean(unsigned mask, std::uint64_t first_seed, int count) {
  FuzzOptions opt;
  opt.invariants = mask;
  for (int i = 0; i < count; ++i) {
    FuzzReport r = run_fuzz_seed(first_seed + i, opt);
    EXPECT_TRUE(r.ok) << r.to_string();
  }
}

// Seed ranges are disjoint across tests, so the label-`fuzz` tier covers
// distinct instances rather than re-checking the same ones.
TEST(FuzzInvariants, MappedNetlistEquivalentToSubject) {
  expect_clean(kFuzzEquivalence, 10'000, 100);
}

TEST(FuzzInvariants, FastLabelsMatchReferenceOracle) {
  expect_clean(kFuzzOracleOptimality, 20'000, 100);
}

TEST(FuzzInvariants, TreeCoverNeverBeatsDagCover) {
  expect_clean(kFuzzTreeVsDag, 30'000, 100);
}

TEST(FuzzInvariants, ExtendedMatchesNeverWorseThanStandard) {
  expect_clean(kFuzzExtendedVsStandard, 40'000, 100);
}

TEST(FuzzInvariants, ThreadCountDoesNotChangeTheResult) {
  expect_clean(kFuzzThreadDeterminism, 50'000, 100);
}

TEST(FuzzInvariants, SupergateLibraryNeverMapsSlowerThanBase) {
  expect_clean(kFuzzSupergateDominance, 60'000, 40);
}

TEST(FuzzInvariants, CutBackendNeverMapsSlowerThanStructural) {
  expect_clean(kFuzzBackendCross, 70'000, 40);
}

TEST(FuzzInvariants, SupergateDominanceHoldsOnMultiLevelLibraries) {
  // Multi-level base gates (non-read-once functions) are the richest
  // composition fodder; the dominance and equivalence invariants must
  // hold there too.
  FuzzOptions opt;
  opt.invariants = kFuzzSupergateDominance | kFuzzEquivalence;
  opt.multi_level_libraries = true;
  for (int i = 0; i < 25; ++i) {
    FuzzReport r = run_fuzz_seed(61'000 + i, opt);
    EXPECT_TRUE(r.ok) << r.to_string();
  }
}

TEST(FuzzInvariants, LoadRoundsNeverMeasureWorseThanRoundZero) {
  expect_clean(kFuzzLoadRounds, 80'000, 40);
}

TEST(FuzzPipeline, QuickSweepAllInvariants) {
  expect_clean(kFuzzAllInvariants, 1, 200);
}

TEST(FuzzPipeline, InstancesAreDeterministicInTheSeed) {
  FuzzInstance a = make_fuzz_instance(77);
  FuzzInstance b = make_fuzz_instance(77);
  EXPECT_EQ(a.library_text, b.library_text);
  EXPECT_EQ(a.circuit.size(), b.circuit.size());
  EXPECT_NE(make_fuzz_instance(78).library_text, a.library_text);
}

TEST(FuzzPipeline, InjectedLabelBugIsDetected) {
  // The harness must be able to see a broken mapper: with the test hook
  // on, the oracle comparison fails on any subject containing an
  // inverter (seed 1 does).
  FuzzOptions opt;
  opt.inject_label_bug = true;
  FuzzReport r = run_fuzz_seed(1, opt);
  ASSERT_FALSE(r.ok) << "injected bug went unnoticed";
  bool oracle_caught_it = false;
  for (const FuzzViolation& v : r.violations)
    if (v.invariant == "OracleOptimality") oracle_caught_it = true;
  EXPECT_TRUE(oracle_caught_it) << r.to_string();
}

TEST(FuzzPipeline, InjectedBackendBugIsDetected) {
  // Same bar for the ninth invariant: a cut backend that ever came out
  // slower than the structural mapper must be caught.
  FuzzOptions opt;
  opt.invariants = kFuzzBackendCross;
  opt.inject_backend_bug = true;
  FuzzReport r = run_fuzz_seed(1, opt);
  ASSERT_FALSE(r.ok) << "injected bug went unnoticed";
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].invariant, "BackendCross");
}

TEST(FuzzPipeline, InjectedLoadBugIsDetected) {
  // And for the tenth: a load-aware flow that ever measured worse than
  // its own round 0 must be caught.
  FuzzOptions opt;
  opt.invariants = kFuzzLoadRounds;
  opt.inject_load_bug = true;
  FuzzReport r = run_fuzz_seed(1, opt);
  ASSERT_FALSE(r.ok) << "injected bug went unnoticed";
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].invariant, "LoadRounds");
}

TEST(FuzzLong, DeepSweep) {
  if (std::getenv("DAGMAP_FUZZ_LONG") == nullptr)
    GTEST_SKIP() << "set DAGMAP_FUZZ_LONG=1 (or run `ctest -C long -L "
                    "fuzz-long`) for the deep sweep";
  FuzzOptions opt;
  opt.max_nodes = 80;  // bigger instances than the quick tier
  for (std::uint64_t seed = 100'000; seed < 105'000; ++seed) {
    FuzzReport r = run_fuzz_seed(seed, opt);
    ASSERT_TRUE(r.ok) << r.to_string();
  }
}

}  // namespace
}  // namespace dagmap
