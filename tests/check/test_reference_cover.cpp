// The reference oracle must (a) agree with the production matcher on the
// match sets it re-derives independently, and (b) certify the fast
// labeling: oracle labels == dag_map labels on every node.  (b) is the
// paper's delay-optimality claim made mechanically checkable — the
// dedicated "oracle-optimality" invariant test of the suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "check/reference_cover.hpp"
#include "core/dag_mapper.hpp"
#include "decomp/tech_decomp.hpp"
#include "gen/circuits.hpp"
#include "gen/libraries.hpp"
#include "library/standard_libs.hpp"
#include "match/matcher.hpp"
#include "netlist/assert.hpp"

namespace dagmap {
namespace {

// Canonical text form of a match set for set equality across matchers.
std::set<std::string> match_keys(const std::vector<Match>& matches) {
  std::set<std::string> keys;
  for (const Match& m : matches) {
    std::string k = m.gate->name;
    for (NodeId leaf : m.pin_binding) k += "|" + std::to_string(leaf);
    keys.insert(k);
  }
  return keys;
}

TEST(ReferenceCover, MatchSetsAgreeWithProductionMatcher) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Network sg = tech_decompose(make_random_dag(5, 18, 3, seed));
    GateLibrary lib = make_random_library(seed * 31, 8, 4);
    Matcher matcher(lib, sg);
    for (NodeId n = 0; n < sg.size(); ++n) {
      if (sg.is_source(n)) continue;
      for (MatchClass mc :
           {MatchClass::Exact, MatchClass::Standard, MatchClass::Extended}) {
        auto ref = match_keys(reference_matches_at(sg, lib, n, mc));
        auto fast = match_keys(matcher.matches_at(n, mc));
        EXPECT_EQ(ref, fast) << "seed " << seed << " node " << n << " class "
                             << to_string(mc);
      }
    }
  }
}

TEST(ReferenceCover, SingleNandAgainstMinimalLibrary) {
  Network n("tiny");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  n.add_output(n.add_nand2(a, b), "o");
  GateLibrary lib = make_minimal_library();
  ReferenceLabels ref = reference_labels(n, lib, MatchClass::Standard);
  // The only cover is the NAND2 gate itself: delay = its worst pin delay.
  EXPECT_DOUBLE_EQ(ref.optimal_delay, lib.nand2()->max_pin_delay());
}

class OracleAgreement
    : public ::testing::TestWithParam<MatchClass> {};

TEST_P(OracleAgreement, FastLabelsEqualOracleLabels) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Network sg = tech_decompose(make_random_dag(6, 25, 3, seed * 7));
    GateLibrary lib =
        seed % 3 == 0 ? make_lib2_library() : make_random_library(seed, 9, 4);
    MapResult fast = dag_map(sg, lib, {.match_class = GetParam()});
    ASSERT_EQ(fast.truncations, 0u);
    ReferenceLabels ref = reference_labels(sg, lib, GetParam());
    for (NodeId n = 0; n < sg.size(); ++n)
      EXPECT_NEAR(fast.label[n], ref.label[n], 1e-9)
          << "seed " << seed << " node " << n;
    EXPECT_NEAR(fast.optimal_delay, ref.optimal_delay, 1e-9) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(BothClasses, OracleAgreement,
                         ::testing::Values(MatchClass::Standard,
                                           MatchClass::Extended),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(ReferenceCover, RefusesOversizedSubjects) {
  Network sg = tech_decompose(make_random_dag(8, 60, 4, 11));
  GateLibrary lib = make_minimal_library();
  EXPECT_THROW((void)reference_labels(sg, lib, MatchClass::Standard,
                                      /*max_internal=*/4),
               ContractError);
}

}  // namespace
}  // namespace dagmap
