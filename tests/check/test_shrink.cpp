// Delta-debugging shrinker: minimized instances must still fail, must be
// drastically smaller, and the injected-labeling-bug scenario (the
// acceptance bar for `dagmap_fuzz --shrink`) must land under 15 nodes.
#include <gtest/gtest.h>

#include "check/fuzz_pipeline.hpp"
#include "check/shrink.hpp"
#include "library/gate_library.hpp"
#include "netlist/assert.hpp"
#include "netlist/network.hpp"

namespace dagmap {
namespace {

// The tool's predicate, minus the file I/O: rebuild the library and run
// the invariant suite; exceptions count as failures.
bool suite_fails(const Network& circuit, const std::string& library_text,
                 const FuzzOptions& opt) {
  try {
    FuzzInstance inst{0, circuit, library_text,
                      GateLibrary::from_genlib_text(library_text, "shrink")};
    return !run_fuzz_instance(inst, opt).ok;
  } catch (const std::exception&) {
    return true;
  }
}

TEST(Shrink, InjectedLabelingBugMinimizesBelow15Nodes) {
  FuzzOptions opt;
  opt.inject_label_bug = true;
  FuzzInstance inst = make_fuzz_instance(1, opt);
  ASSERT_FALSE(run_fuzz_instance(inst, opt).ok);

  ShrinkResult r = shrink_instance(
      inst.circuit, inst.library_text,
      [&](const Network& c, const std::string& l) {
        return suite_fails(c, l, opt);
      });

  EXPECT_LE(r.final_nodes, 15u) << "shrink got stuck at " << r.final_nodes
                                << " of " << r.initial_nodes << " nodes";
  EXPECT_LT(r.final_nodes, r.initial_nodes);
  EXPECT_LE(r.final_gates, r.initial_gates);
  // The minimized instance must still reproduce, and still be valid.
  EXPECT_TRUE(suite_fails(r.circuit, r.library_text, opt));
  EXPECT_NO_THROW(r.circuit.check());
}

TEST(Shrink, InjectedSupergateBugMinimizesAndReproduces) {
  // The sixth invariant (SupergateDominance) must flow through the same
  // detect -> shrink -> replay machinery as the others.
  FuzzOptions opt;
  opt.invariants = kFuzzSupergateDominance;
  opt.inject_supergate_bug = true;
  FuzzInstance inst = make_fuzz_instance(3, opt);
  ASSERT_FALSE(run_fuzz_instance(inst, opt).ok);

  ShrinkResult r = shrink_instance(
      inst.circuit, inst.library_text,
      [&](const Network& c, const std::string& l) {
        return suite_fails(c, l, opt);
      });

  EXPECT_LT(r.final_nodes, r.initial_nodes);
  EXPECT_LE(r.final_gates, r.initial_gates);
  EXPECT_TRUE(suite_fails(r.circuit, r.library_text, opt));
  EXPECT_NO_THROW(r.circuit.check());
}

TEST(Shrink, InjectedBackendBugMinimizesAndReproduces) {
  // The ninth invariant (BackendCross) must flow through the same
  // detect -> shrink -> replay machinery — this is the predicate
  // `dagmap_fuzz --backend-cross --shrink` runs.
  FuzzOptions opt;
  opt.invariants = kFuzzBackendCross;
  opt.inject_backend_bug = true;
  FuzzInstance inst = make_fuzz_instance(5, opt);
  ASSERT_FALSE(run_fuzz_instance(inst, opt).ok);

  ShrinkResult r = shrink_instance(
      inst.circuit, inst.library_text,
      [&](const Network& c, const std::string& l) {
        return suite_fails(c, l, opt);
      });

  EXPECT_LT(r.final_nodes, r.initial_nodes);
  EXPECT_LE(r.final_gates, r.initial_gates);
  EXPECT_TRUE(suite_fails(r.circuit, r.library_text, opt));
  EXPECT_NO_THROW(r.circuit.check());
}

TEST(Shrink, StructuralPredicateReducesToTheKernel) {
  // Minimal failure kernel for "has at least one generic logic node":
  // one node.  The shrinker should get all the way down.
  FuzzInstance inst = make_fuzz_instance(9);
  auto has_logic_node = [](const Network& c, const std::string&) {
    for (NodeId n = 0; n < c.size(); ++n)
      if (c.kind(n) == NodeKind::Logic) return true;
    return false;
  };
  ASSERT_TRUE(has_logic_node(inst.circuit, inst.library_text));
  ShrinkResult r =
      shrink_instance(inst.circuit, inst.library_text, has_logic_node);
  EXPECT_TRUE(has_logic_node(r.circuit, r.library_text));
  // One logic node + its fanin PIs + one output: a handful of nodes.
  EXPECT_LE(r.final_nodes, 4u);
  // Library shrinks to the INV/NAND2 completeness floor.
  EXPECT_EQ(r.final_gates, 2u);
}

TEST(Shrink, RejectsAPassingInstance) {
  FuzzInstance inst = make_fuzz_instance(2);
  auto never_fails = [](const Network&, const std::string&) { return false; };
  EXPECT_THROW(
      (void)shrink_instance(inst.circuit, inst.library_text, never_fails),
      ContractError);
}

}  // namespace
}  // namespace dagmap
