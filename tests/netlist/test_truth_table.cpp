// Unit tests for dagmap::TruthTable.
#include "netlist/truth_table.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "netlist/assert.hpp"

namespace dagmap {
namespace {

TEST(TruthTable, ConstantsHaveExpectedBits) {
  EXPECT_TRUE(TruthTable::constant(false, 0).is_const0());
  EXPECT_TRUE(TruthTable::constant(true, 0).is_const1());
  EXPECT_TRUE(TruthTable::constant(false, 3).is_const0());
  EXPECT_TRUE(TruthTable::constant(true, 3).is_const1());
  EXPECT_EQ(TruthTable::constant(true, 3).count_ones(), 8u);
  EXPECT_TRUE(TruthTable::constant(true, 10).is_const1());
  EXPECT_EQ(TruthTable::constant(true, 10).count_ones(), 1024u);
}

TEST(TruthTable, VariableProjectionSmall) {
  for (unsigned nv = 1; nv <= 6; ++nv) {
    for (unsigned v = 0; v < nv; ++v) {
      TruthTable t = TruthTable::variable(v, nv);
      for (std::size_t m = 0; m < t.num_minterms(); ++m)
        EXPECT_EQ(t.bit(m), static_cast<bool>((m >> v) & 1))
            << "nv=" << nv << " v=" << v << " m=" << m;
    }
  }
}

TEST(TruthTable, VariableProjectionWide) {
  for (unsigned v : {6u, 9u, 12u, 15u}) {
    TruthTable t = TruthTable::variable(v, 16);
    EXPECT_EQ(t.count_ones(), t.num_minterms() / 2);
    EXPECT_TRUE(t.bit(std::size_t{1} << v));
    EXPECT_FALSE(t.bit(0));
    EXPECT_TRUE(t.depends_on(v));
    EXPECT_FALSE(t.depends_on(v == 6 ? 7 : 6));
  }
}

TEST(TruthTable, BooleanOperators) {
  TruthTable a = TruthTable::variable(0, 2);
  TruthTable b = TruthTable::variable(1, 2);
  EXPECT_EQ((a & b).to_hex(), "8");
  EXPECT_EQ((a | b).to_hex(), "e");
  EXPECT_EQ((a ^ b).to_hex(), "6");
  EXPECT_EQ((~(a & b)).to_hex(), "7");  // NAND2
  EXPECT_EQ((~a).to_hex(), "5");
}

TEST(TruthTable, FromBinaryString) {
  TruthTable x = TruthTable::from_binary_string("0110");
  EXPECT_EQ(x, TruthTable::variable(0, 2) ^ TruthTable::variable(1, 2));
  TruthTable m = TruthTable::from_binary_string("10001000");
  EXPECT_EQ(m.num_vars(), 3u);
}

TEST(TruthTable, ExtendedToKeepsFunction) {
  TruthTable a = TruthTable::variable(0, 1);
  TruthTable wide = a.extended_to(8);
  EXPECT_EQ(wide.num_vars(), 8u);
  for (std::size_t m = 0; m < wide.num_minterms(); ++m)
    EXPECT_EQ(wide.bit(m), static_cast<bool>(m & 1));
  // Extending a wide table too.
  TruthTable v7 = TruthTable::variable(7, 8).extended_to(11);
  for (std::size_t m = 0; m < v7.num_minterms(); ++m)
    EXPECT_EQ(v7.bit(m), static_cast<bool>((m >> 7) & 1));
}

TEST(TruthTable, PermutedSwapsVariables) {
  // f = x0 & ~x1; swapping the variables gives ~x0 & x1.
  TruthTable f = TruthTable::variable(0, 2) & ~TruthTable::variable(1, 2);
  std::vector<unsigned> perm{1, 0};
  TruthTable g = f.permuted(perm);
  EXPECT_EQ(g, ~TruthTable::variable(0, 2) & TruthTable::variable(1, 2));
}

TEST(TruthTable, PermutedIsInvolutionForSwap) {
  TruthTable f = TruthTable::from_bits(0b10010110, 3);
  std::vector<unsigned> perm{2, 0, 1};      // cycle
  std::vector<unsigned> inv_perm{1, 2, 0};  // inverse cycle
  EXPECT_EQ(f.permuted(perm).permuted(inv_perm), f);
}

TEST(TruthTable, ComposeBuildsAoi) {
  // Outer: 2-input OR; inner args: x0&x1 and x2.  Result: x0&x1 | x2.
  TruthTable outer =
      TruthTable::variable(0, 2) | TruthTable::variable(1, 2);
  std::vector<TruthTable> args{
      TruthTable::variable(0, 3) & TruthTable::variable(1, 3),
      TruthTable::variable(2, 3)};
  TruthTable got = outer.compose(args);
  TruthTable want = (TruthTable::variable(0, 3) & TruthTable::variable(1, 3)) |
                    TruthTable::variable(2, 3);
  EXPECT_EQ(got, want);
}

TEST(TruthTable, DependsOn) {
  TruthTable f = TruthTable::variable(0, 3) & TruthTable::variable(2, 3);
  EXPECT_TRUE(f.depends_on(0));
  EXPECT_FALSE(f.depends_on(1));
  EXPECT_TRUE(f.depends_on(2));
}

TEST(TruthTable, HexOfXor2) {
  TruthTable x = TruthTable::variable(0, 2) ^ TruthTable::variable(1, 2);
  EXPECT_EQ(x.to_hex(), "6");
  TruthTable x3 = TruthTable::variable(0, 3) ^ TruthTable::variable(1, 3) ^
                  TruthTable::variable(2, 3);
  EXPECT_EQ(x3.to_hex(), "96");
}

TEST(TruthTable, HashDistinguishesSimpleFunctions) {
  TruthTable a = TruthTable::variable(0, 2);
  TruthTable b = TruthTable::variable(1, 2);
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), TruthTable::variable(0, 2).hash());
}

TEST(TruthTable, RejectsTooManyVars) {
  EXPECT_THROW(TruthTable(17), ContractError);
}

TEST(TruthTable, MixedWidthOperandsRejected) {
  TruthTable a = TruthTable::variable(0, 2);
  TruthTable b = TruthTable::variable(0, 3);
  EXPECT_THROW((void)(a & b), ContractError);
}

// Property sweep: extended_to never changes evaluation on the original
// variables, across widths crossing the 1-word boundary.
class TruthTableExtendProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(TruthTableExtendProperty, EvaluationPreserved) {
  auto [from, to] = GetParam();
  if (from > to) return;
  // A pseudo-random but deterministic function of `from` vars.
  TruthTable f(from);
  std::uint64_t state = 0x1234567899ull + from * 977;
  for (std::size_t m = 0; m < f.num_minterms(); ++m) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    f.set_bit(m, (state >> 62) & 1);
  }
  TruthTable g = f.extended_to(to);
  std::size_t mask = (std::size_t{1} << from) - 1;
  for (std::size_t m = 0; m < g.num_minterms();
       m += 1 + (g.num_minterms() >> 10))
    EXPECT_EQ(g.bit(m), f.bit(m & mask));
}

INSTANTIATE_TEST_SUITE_P(
    Widths, TruthTableExtendProperty,
    ::testing::Combine(::testing::Values(0u, 1u, 3u, 5u, 6u, 7u, 9u),
                       ::testing::Values(1u, 4u, 6u, 7u, 10u, 13u)));

}  // namespace
}  // namespace dagmap
