// Unit tests for dagmap::Network.
#include "netlist/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "netlist/assert.hpp"

namespace dagmap {
namespace {

// Builds the tiny subject graph used in several tests:
//   f = NAND(a, b); g = INV(f); POs: g.
Network tiny_subject() {
  Network n("tiny");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId f = n.add_nand2(a, b);
  NodeId g = n.add_inv(f);
  n.add_output(g, "out");
  return n;
}

TEST(Network, BasicConstruction) {
  Network n = tiny_subject();
  EXPECT_EQ(n.size(), 4u);
  EXPECT_EQ(n.num_inputs(), 2u);
  EXPECT_EQ(n.num_outputs(), 1u);
  EXPECT_EQ(n.num_internal(), 2u);
  EXPECT_TRUE(n.is_subject_graph());
  EXPECT_TRUE(n.is_k_bounded(2));
  n.check();
}

TEST(Network, TopoOrderRespectsEdges) {
  Network n("t");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId c = n.add_nand2(a, b);
  NodeId d = n.add_inv(c);
  NodeId e = n.add_nand2(c, d);
  n.add_output(e, "o");
  auto order = n.topo_order();
  ASSERT_EQ(order.size(), n.size());
  std::vector<std::size_t> pos(n.size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId id = 0; id < n.size(); ++id)
    for (NodeId f : n.fanins(id))
      if (n.kind(id) != NodeKind::Latch) {
        EXPECT_LT(pos[f], pos[id]);
      }
}

TEST(Network, FanoutCountsIncludePOs) {
  Network n = tiny_subject();
  auto counts = n.fanout_counts();
  EXPECT_EQ(counts[0], 1u);  // a -> nand
  EXPECT_EQ(counts[1], 1u);  // b -> nand
  EXPECT_EQ(counts[2], 1u);  // nand -> inv
  EXPECT_EQ(counts[3], 1u);  // inv -> PO
}

TEST(Network, LocalFunctionOfPrimitives) {
  Network n = tiny_subject();
  EXPECT_EQ(n.local_function(2).to_hex(), "7");  // NAND2
  EXPECT_EQ(n.local_function(3).to_hex(), "1");  // INV
  EXPECT_THROW(n.local_function(0), ContractError);
}

TEST(Network, GenericGatesComputeExpectedFunctions) {
  Network n("g");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId c = n.add_input("c");
  EXPECT_EQ(n.local_function(n.add_and(a, b)).to_hex(), "8");
  EXPECT_EQ(n.local_function(n.add_or(a, b)).to_hex(), "e");
  EXPECT_EQ(n.local_function(n.add_xor(a, b)).to_hex(), "6");
  EXPECT_EQ(n.local_function(n.add_maj3(a, b, c)).to_hex(), "e8");
  // MUX: sel ? then : else with vars (sel, then, else).
  TruthTable mux = n.local_function(n.add_mux(a, b, c));
  for (unsigned m = 0; m < 8; ++m) {
    bool sel = m & 1, t = (m >> 1) & 1, e = (m >> 2) & 1;
    EXPECT_EQ(mux.bit(m), sel ? t : e);
  }
}

TEST(Network, WideAndOrBuilders) {
  Network n("w");
  std::vector<NodeId> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(n.add_input("i" + std::to_string(i)));
  TruthTable f_and = n.local_function(n.add_and(ins));
  TruthTable f_or = n.local_function(n.add_or(ins));
  EXPECT_EQ(f_and.count_ones(), 1u);
  EXPECT_TRUE(f_and.bit(31));
  EXPECT_EQ(f_or.count_ones(), 31u);
  EXPECT_FALSE(f_or.bit(0));
}

TEST(Network, IsSubjectGraphRejectsGenericNodes) {
  Network n("g");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId x = n.add_xor(a, b);
  n.add_output(x, "o");
  EXPECT_FALSE(n.is_subject_graph());
}

TEST(Network, DepthOfChain) {
  Network n("chain");
  NodeId cur = n.add_input("a");
  for (int i = 0; i < 7; ++i) cur = n.add_inv(cur);
  n.add_output(cur, "o");
  EXPECT_EQ(n.depth(), 7u);
}

TEST(Network, TransitiveFaninStopsAtSources) {
  Network n = tiny_subject();
  auto cone = n.transitive_fanin(3);
  EXPECT_EQ(cone.size(), 4u);
  auto cone2 = n.transitive_fanin(2);
  EXPECT_EQ(cone2.size(), 3u);
}

TEST(Network, LatchesActAsSources) {
  // Cycles through latches are legal; latch outputs act as combinational
  // sources, so topological ordering succeeds.
  Network m("ring");
  NodeId x = m.add_input("x");
  // l1 feeds g, g feeds l2, l2 feeds h, h feeds... a combinational ring is
  // not allowed but a ring through latches is.  Construct in two phases is
  // not supported; emulate by: l1's D = x (simple), g = nand(l1, x).
  NodeId l1 = m.add_latch(x, "l1");
  NodeId g = m.add_nand2(l1, x);
  NodeId l2 = m.add_latch(g, "l2");
  NodeId h = m.add_inv(l2);
  m.add_output(h, "o");
  EXPECT_EQ(m.num_latches(), 2u);
  auto order = m.topo_order();
  EXPECT_EQ(order.size(), m.size());
  m.check();
}

TEST(Network, CheckRejectsCombinationalCycle) {
  // A cycle cannot be constructed through the public builders (fanins
  // must already exist), so acyclicity is structural by construction.
  // Verify instead that check() runs clean on a DAG with reconvergence.
  Network n("reconv");
  NodeId a = n.add_input("a");
  NodeId i1 = n.add_inv(a);
  NodeId i2 = n.add_inv(a);
  NodeId g = n.add_nand2(i1, i2);
  n.add_output(g, "o");
  EXPECT_NO_THROW(n.check());
}

TEST(Network, CleanedCopyDropsDeadNodes) {
  Network n("dead");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId live = n.add_nand2(a, b);
  NodeId dead = n.add_inv(a);
  (void)dead;
  NodeId dead2 = n.add_nand2(dead, b);
  (void)dead2;
  n.add_output(live, "o");
  auto [clean, remap] = n.cleaned_copy();
  EXPECT_EQ(clean.size(), 3u);            // a, b, nand
  EXPECT_EQ(clean.num_inputs(), 2u);      // PIs preserved
  EXPECT_EQ(remap[dead], kNullNode);
  EXPECT_NE(remap[live], kNullNode);
  EXPECT_EQ(clean.outputs()[0].name, "o");
  clean.check();
}

TEST(Network, CountKind) {
  Network n = tiny_subject();
  EXPECT_EQ(n.count_kind(NodeKind::Nand2), 1u);
  EXPECT_EQ(n.count_kind(NodeKind::Inv), 1u);
  EXPECT_EQ(n.count_kind(NodeKind::PrimaryInput), 2u);
}

TEST(Network, RedirectOutput) {
  Network n("r");
  NodeId a = n.add_input("a");
  NodeId g = n.add_inv(a);
  NodeId h = n.add_inv(a);
  n.add_output(g, "o");
  n.redirect_output(0, h);
  EXPECT_EQ(n.outputs()[0].node, h);
  EXPECT_EQ(n.outputs()[0].name, "o");
  EXPECT_THROW(n.redirect_output(1, h), ContractError);
}

TEST(Network, RedirectLatchInput) {
  Network n("r");
  NodeId a = n.add_input("a");
  NodeId g = n.add_inv(a);
  NodeId l = n.add_latch(a, "l");
  n.add_output(l, "q");
  n.redirect_latch_input(l, g);
  EXPECT_EQ(n.fanins(l)[0], g);
  EXPECT_THROW(n.redirect_latch_input(g, a), ContractError);  // not a latch
  n.check();
}

TEST(Network, NamedPIsRequired) {
  Network n("x");
  EXPECT_THROW(n.add_input(""), ContractError);
}

TEST(Network, AddLogicArityMismatchRejected) {
  Network n("x");
  NodeId a = n.add_input("a");
  EXPECT_THROW(n.add_logic({a}, TruthTable::from_bits(0b0110, 2)),
               ContractError);
}

TEST(Network, FanoutViewMatchesCounts) {
  Network n("f");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId g = n.add_nand2(a, b);
  NodeId h = n.add_inv(g);
  NodeId i = n.add_inv(g);
  n.add_output(h, "h");
  n.add_output(i, "i");
  FanoutView view = n.fanout_view();
  ASSERT_EQ(view.degree(g), 2u);
  EXPECT_EQ(view[g][0], h);  // ascending reader-id order
  EXPECT_EQ(view[g][1], i);
  const auto& counts = n.fanout_counts();
  EXPECT_EQ(counts[g], 2u);
  EXPECT_EQ(counts[h], 1u);  // PO reference counts
  EXPECT_EQ(view.degree(h), 0u);  // ... but is not a CSR edge
}

}  // namespace
}  // namespace dagmap
