// Tests for the CSR graph core and the memoized TopologyCache:
// span/handle stability, name interning, cleaned_copy invariants, the
// topo.recompute counter contract, and a fuzz check of the CSR Kahn
// traversal against an independent reference implementation.
#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "decomp/tech_decomp.hpp"
#include "gen/circuits.hpp"
#include "lutmap/flowmap.hpp"
#include "netlist/network.hpp"
#include "netlist/stable_pool.hpp"
#include "obs/obs.hpp"
#include "seq/pan_liu.hpp"

namespace dagmap {
namespace {

// ---- span stability -------------------------------------------------------

TEST(StablePool, HandlesSurviveGrowthAndCopy) {
  StablePool<NodeId> pool;
  auto h1 = pool.allocate(3);
  NodeId* p1 = pool.data(h1);
  p1[0] = 10;
  p1[1] = 20;
  p1[2] = 30;
  // Grow past several chunks; h1's storage must not move.
  std::vector<StablePool<NodeId>::Handle> handles;
  for (int i = 0; i < 100000; ++i) handles.push_back(pool.allocate(2));
  EXPECT_EQ(pool.data(h1), p1);
  // Oversized allocation gets its own chunk but the handle works alike.
  auto big = pool.allocate(1 << 17);
  pool.data(big)[0] = 99;
  EXPECT_EQ(pool.data(h1)[2], 30u);
  // Copies preserve the chunk layout, so handles transfer.
  StablePool<NodeId> copy = pool;
  EXPECT_EQ(copy.data(h1)[0], 10u);
  EXPECT_EQ(copy.data(h1)[1], 20u);
  EXPECT_EQ(copy.data(big)[0], 99u);
  EXPECT_NE(copy.data(h1), pool.data(h1));  // distinct storage
}

TEST(SpanStability, FaninSpansSurviveManyAdditions) {
  Network n("grow");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId g = n.add_nand2(a, b);
  std::span<const NodeId> before = n.fanins(g);
  const NodeId* data_before = before.data();
  // Force many arena chunks' worth of growth.
  NodeId cur = g;
  std::vector<std::span<const NodeId>> spans;
  for (int i = 0; i < 200000; ++i) {
    cur = n.add_inv(cur);
    if (i % 50000 == 0) spans.push_back(n.fanins(cur));
  }
  std::span<const NodeId> after = n.fanins(g);
  EXPECT_EQ(after.data(), data_before);  // same arena slot, no realloc
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[0], a);
  EXPECT_EQ(after[1], b);
  for (std::span<const NodeId> s : spans) {
    ASSERT_EQ(s.size(), 1u);  // early spans still readable
  }
}

TEST(SpanStability, LatchConnectDoesNotMoveSpans) {
  Network n("seq");
  NodeId a = n.add_input("a");
  NodeId l = n.add_latch_placeholder("l");
  EXPECT_TRUE(n.fanins(l).empty());  // unconnected placeholder
  NodeId g = n.add_nand2(a, l);
  std::span<const NodeId> g_span = n.fanins(g);
  const NodeId* g_data = g_span.data();
  n.connect_latch(l, g);  // writes the reserved slot in place
  EXPECT_EQ(n.fanins(g).data(), g_data);
  ASSERT_EQ(n.fanins(l).size(), 1u);
  EXPECT_EQ(n.fanins(l)[0], g);
  n.redirect_latch_input(l, a);
  EXPECT_EQ(n.fanins(l)[0], a);
  EXPECT_EQ(n.fanins(g).data(), g_data);
  n.add_output(g, "o");
  n.check();
}

// ---- name interning -------------------------------------------------------

TEST(NameInterning, DuplicateAndEmptyNamesRoundTrip) {
  Network n("names");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId g1 = n.add_nand2(a, b, "shared");
  NodeId g2 = n.add_nand2(b, a, "shared");
  NodeId g3 = n.add_inv(g1);  // empty name
  NodeId g4 = n.add_inv(g2);  // empty name
  EXPECT_EQ(n.name(g1), "shared");
  EXPECT_EQ(n.name(g2), "shared");
  // Duplicates intern to the same pooled string object.
  EXPECT_EQ(&n.name(g1), &n.name(g2));
  EXPECT_EQ(n.name(g3), "");
  EXPECT_EQ(&n.name(g3), &n.name(g4));
  EXPECT_EQ(n.name(a), "a");

  // Copies keep the names (rebuilt intern map, fresh pool).
  Network copy = n;
  EXPECT_EQ(copy.name(g1), "shared");
  EXPECT_EQ(copy.name(g2), "shared");
  EXPECT_EQ(copy.name(a), "a");
  NodeId g5 = copy.add_inv(g3, "shared");  // interning still works post-copy
  EXPECT_EQ(&copy.name(g5), &copy.name(g1));
}

// ---- cleaned_copy ---------------------------------------------------------

TEST(CleanedCopy, IdMapInvariantsOnLatchedNetwork) {
  Network n("seq");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId l = n.add_latch_placeholder("l");
  NodeId g = n.add_nand2(a, l, "g");
  n.connect_latch(l, g);       // feedback through the latch
  NodeId dead = n.add_nand2(a, b, "dead");
  NodeId dead2 = n.add_inv(dead, "dead2");
  (void)dead2;
  n.add_output(g, "o");
  n.check();

  auto [clean, remap] = n.cleaned_copy();
  clean.check();
  ASSERT_EQ(remap.size(), n.size());
  // Dead cone dropped, live cone kept.
  EXPECT_EQ(remap[dead], kNullNode);
  EXPECT_EQ(remap[dead2], kNullNode);
  ASSERT_NE(remap[g], kNullNode);
  ASSERT_NE(remap[l], kNullNode);
  // Kinds, names and (remapped) fanins agree through the id map.
  for (NodeId old = 0; old < n.size(); ++old) {
    NodeId nw = remap[old];
    if (nw == kNullNode) continue;
    EXPECT_EQ(clean.kind(nw), n.kind(old));
    EXPECT_EQ(clean.name(nw), n.name(old));
    auto old_fi = n.fanins(old);
    auto new_fi = clean.fanins(nw);
    ASSERT_EQ(new_fi.size(), old_fi.size());
    for (std::size_t i = 0; i < old_fi.size(); ++i)
      EXPECT_EQ(new_fi[i], remap[old_fi[i]]);
  }
  // The id map is injective over live nodes.
  std::vector<NodeId> live;
  for (NodeId old = 0; old < n.size(); ++old)
    if (remap[old] != kNullNode) live.push_back(remap[old]);
  std::sort(live.begin(), live.end());
  EXPECT_EQ(std::adjacent_find(live.begin(), live.end()), live.end());
  EXPECT_EQ(live.size(), clean.size());
  // Latch feedback survives the rebuild.
  EXPECT_EQ(clean.fanins(remap[l])[0], remap[g]);
}

// ---- TopologyCache contract ----------------------------------------------

TEST(TopologyCache, RecomputesOncePerMutationEpoch) {
  Network n = make_random_dag(8, 200, 4, 7);
  obs::start();
  {
    obs::Scope scope("phase");
    const auto& t1 = n.topo_order();
    const auto& c1 = n.fanout_counts();
    FanoutView v1 = n.fanout_view();
    const auto& t2 = n.topo_order();
    EXPECT_EQ(&t1, &t2);  // same cached vector
    (void)c1;
    (void)v1;
  }
  obs::stop();
  auto prof = obs::collect();
  EXPECT_EQ(prof.counters.at("topo.recompute"), 1u);

  // A structural mutation starts a new epoch: exactly one more fill.
  obs::start();
  NodeId a = n.add_input("late_pi");
  n.add_output(n.add_inv(a), "late_po");
  (void)n.topo_order();
  (void)n.fanout_counts();
  n.fanout_view();
  obs::stop();
  prof = obs::collect();
  EXPECT_EQ(prof.counters.at("topo.recompute"), 1u);
}

// Regression for the former double-computation sites: one FlowMap run
// (which queries topo_order three times and fanout_counts once) and one
// Pan-Liu sequential labeling must refill the subject's cache exactly
// once.
TEST(TopologyCache, FlowMapRefillsSubjectOnce) {
  Network n = tech_decompose(make_random_dag(10, 60, 4, 11));
  (void)n.topo_order();  // warm before the session: the phase itself
                         // must be pure cache hits after its first fill
  obs::start();
  LutMapResult r = flowmap(n, {.k = 4});
  obs::stop();
  auto prof = obs::collect();
  ASSERT_TRUE(r.netlist.size() > 0);
  // The subject was warmed, so every subject query hits; only networks
  // *built inside* the run (the LUT netlist) may fill, once each.
  auto it = prof.counters.find("topo.recompute");
  std::uint64_t fills = it == prof.counters.end() ? 0 : it->second;
  EXPECT_LE(fills, 1u) << "flowmap recomputed the subject topology";
}

TEST(TopologyCache, PanLiuRefillsSubjectOnce) {
  Network n = make_sequential_pipeline(3, 8, 23);
  (void)n.topo_order();
  obs::start();
  SeqLutResult r = optimal_period_lut_map(n, {});
  obs::stop();
  auto prof = obs::collect();
  EXPECT_TRUE(r.feasible);
  auto it = prof.counters.find("topo.recompute");
  std::uint64_t fills = it == prof.counters.end() ? 0 : it->second;
  EXPECT_LE(fills, 1u) << "pan_liu recomputed the subject topology";
}

// ---- fuzz: CSR Kahn vs reference -----------------------------------------

// Independent reference: the pre-refactor vector-of-vectors Kahn
// traversal (sources in id order, FIFO queue, fanout lists built in
// node-id/pin order, latch targets never enqueued).
std::vector<NodeId> reference_topo_order(const Network& net) {
  std::vector<std::vector<NodeId>> outs(net.size());
  std::vector<std::uint32_t> pending(net.size(), 0);
  for (NodeId id = 0; id < net.size(); ++id) {
    if (net.is_source(id)) continue;
    pending[id] = static_cast<std::uint32_t>(net.fanins(id).size());
    for (NodeId f : net.fanins(id)) outs[f].push_back(id);
  }
  std::vector<NodeId> order;
  order.reserve(net.size());
  std::vector<NodeId> queue;
  std::size_t head = 0;
  for (NodeId id = 0; id < net.size(); ++id)
    if (net.is_source(id)) queue.push_back(id);
  while (head < queue.size()) {
    NodeId id = queue[head++];
    order.push_back(id);
    for (NodeId o : outs[id]) {
      if (net.kind(o) == NodeKind::Latch) continue;
      if (--pending[o] == 0) queue.push_back(o);
    }
  }
  return order;
}

TEST(TopologyFuzz, CsrOrderMatchesReferenceOnRandomNetworks) {
  std::mt19937_64 rng(0xD46C0FFEEull);
  for (int trial = 0; trial < 40; ++trial) {
    unsigned pis = 2 + static_cast<unsigned>(rng() % 8);
    unsigned nodes = 5 + static_cast<unsigned>(rng() % 400);
    unsigned pos = 1 + static_cast<unsigned>(rng() % 4);
    Network n = make_random_dag(pis, nodes, pos, rng());
    n.check();
    const auto& csr = n.topo_order();
    std::vector<NodeId> ref = reference_topo_order(n);
    ASSERT_EQ(csr, ref) << "trial " << trial;
    // Counts agree with a direct recount.
    std::vector<std::uint32_t> counts(n.size(), 0);
    for (NodeId id = 0; id < n.size(); ++id)
      for (NodeId f : n.fanins(id)) ++counts[f];
    for (const Output& o : n.outputs()) ++counts[o.node];
    ASSERT_EQ(n.fanout_counts(), counts) << "trial " << trial;
    // CSR fanout edges: ascending reader ids, PO refs excluded.
    FanoutView view = n.fanout_view();
    std::size_t edges = 0;
    for (NodeId id = 0; id < n.size(); ++id) {
      auto readers = view[id];
      edges += readers.size();
      EXPECT_TRUE(std::is_sorted(readers.begin(), readers.end()));
      for (NodeId r : readers) {
        auto fi = n.fanins(r);
        EXPECT_NE(std::find(fi.begin(), fi.end(), id), fi.end());
      }
    }
    std::size_t expected_edges = 0;
    for (NodeId id = 0; id < n.size(); ++id)
      expected_edges += n.fanins(id).size();
    EXPECT_EQ(edges, expected_edges);
  }
}

TEST(TopologyFuzz, SequentialNetworksAgreeToo) {
  std::mt19937_64 rng(0xBADC0DEull);
  for (int trial = 0; trial < 15; ++trial) {
    Network n = make_sequential_pipeline(
        1 + static_cast<unsigned>(rng() % 4),
        2 + static_cast<unsigned>(rng() % 8), rng());
    n.check();
    ASSERT_EQ(n.topo_order(), reference_topo_order(n)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace dagmap
