// Tests for static timing analysis over mapped netlists.
#include "timing/timing.hpp"

#include <gtest/gtest.h>

#include "library/standard_libs.hpp"

namespace dagmap {
namespace {

const Gate* find_gate(const GateLibrary& lib, const std::string& name) {
  for (const Gate& g : lib.gates())
    if (g.name == name) return &g;
  return nullptr;
}

struct Fixture {
  GateLibrary lib = make_lib2_library();
  MappedNetlist net{"t"};
  InstId a, b, c, g1, g2;

  Fixture() {
    a = net.add_input("a");
    b = net.add_input("b");
    c = net.add_input("c");
    g1 = net.add_gate(find_gate(lib, "nand2"), {a, b});   // delay 1.2
    g2 = net.add_gate(find_gate(lib, "nand2"), {g1, c});  // 1.2 + 1.2
    net.add_output(g2, "o");
  }
};

TEST(Timing, ArrivalTimesAccumulate) {
  Fixture f;
  TimingReport r = analyze_timing(f.net);
  EXPECT_DOUBLE_EQ(r.arrival[f.a], 0.0);
  EXPECT_DOUBLE_EQ(r.arrival[f.g1], 1.2);
  EXPECT_DOUBLE_EQ(r.arrival[f.g2], 2.4);
  EXPECT_DOUBLE_EQ(r.delay, 2.4);
}

TEST(Timing, CriticalPathEndsAtWorstOutput) {
  Fixture f;
  TimingReport r = analyze_timing(f.net);
  ASSERT_GE(r.critical_path.size(), 2u);
  EXPECT_EQ(r.critical_path.back(), f.g2);
  // Path is source -> g1 -> g2 (a or b first).
  EXPECT_EQ(r.critical_path[r.critical_path.size() - 2], f.g1);
}

TEST(Timing, SlackZeroOnCriticalPath) {
  Fixture f;
  TimingReport r = analyze_timing(f.net);
  EXPECT_NEAR(r.slack[f.g2], 0.0, 1e-12);
  EXPECT_NEAR(r.slack[f.g1], 0.0, 1e-12);
  // Input c arrives at 0 but is only needed at 2.4 - 1.2.
  EXPECT_NEAR(r.slack[f.c], 1.2, 1e-12);
}

TEST(Timing, TargetOverridesRequiredTimes) {
  Fixture f;
  TimingReport r = analyze_timing(f.net, 10.0);
  EXPECT_NEAR(r.slack[f.g2], 7.6, 1e-12);
  EXPECT_DOUBLE_EQ(r.delay, 2.4);  // measured delay unchanged
}

TEST(Timing, DifferentPinDelaysRespected) {
  GateLibrary lib = GateLibrary::from_genlib_text(
      "GATE inv 1 O=!a;\n PIN a INV 1 999 1 0 1 0\n"
      "GATE nand2 2 O=!(a*b);\n"
      " PIN a INV 1 999 3.0 0 3.0 0\n PIN b INV 1 999 1.0 0 1.0 0\n");
  MappedNetlist net("t");
  InstId a = net.add_input("a");
  InstId b = net.add_input("b");
  const Gate* nand2 = nullptr;
  for (const Gate& g : lib.gates())
    if (g.name == "nand2") nand2 = &g;
  InstId g = net.add_gate(nand2, {a, b});
  net.add_output(g, "o");
  TimingReport r = analyze_timing(net);
  EXPECT_DOUBLE_EQ(r.delay, 3.0);  // slow pin dominates
}

TEST(Timing, LatchDInputsAreEndpoints) {
  GateLibrary lib = make_lib2_library();
  MappedNetlist net("seq");
  InstId x = net.add_input("x");
  InstId q = net.add_latch_placeholder("q");
  InstId d = net.add_gate(find_gate(lib, "xor2"), {x, q});
  net.connect_latch(q, d);
  net.add_output(q, "out");  // PO is the latch output (arrival 0)
  TimingReport r = analyze_timing(net);
  EXPECT_DOUBLE_EQ(r.delay, 2.2);  // xor2 delay into the latch D
}

TEST(Timing, EmptyNetlistHasZeroDelay) {
  MappedNetlist net("empty");
  InstId a = net.add_input("a");
  net.add_output(a, "o");
  EXPECT_DOUBLE_EQ(circuit_delay(net), 0.0);
}

}  // namespace
}  // namespace dagmap
