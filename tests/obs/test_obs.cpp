// Unit tests for the observability layer (src/obs): session lifecycle,
// phase/counter attribution, per-thread tracks, trace export, and the
// deterministic-merge guarantee.
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace dagmap {
namespace {

// Every test owns its session; make sure a crashed predecessor cannot
// leak an enabled flag into the next test.
class ObsTest : public ::testing::Test {
 protected:
  void TearDown() override { obs::stop(); }
};

TEST_F(ObsTest, DisabledProbesRecordNothing) {
  obs::stop();
  ASSERT_FALSE(obs::enabled());
  {
    obs::Scope scope("ghost");
    obs::counter_add("ghost.counter", 42);
  }
  // A later session must not see anything from the disabled period.
  obs::start();
  obs::stop();
  obs::ProfileData prof = obs::collect();
  EXPECT_TRUE(prof.collected);
  EXPECT_TRUE(prof.events.empty());
  EXPECT_TRUE(prof.counters.empty());
  EXPECT_TRUE(prof.phases.empty());
}

TEST_F(ObsTest, NullScopeNameIsNoOpEvenWhenEnabled) {
  obs::start();
  {
    obs::Scope scope(nullptr);
  }
  obs::stop();
  EXPECT_TRUE(obs::collect().events.empty());
}

TEST_F(ObsTest, PhasesFollowOwnerDepthZeroScopes) {
  obs::start();
  {
    obs::Scope scope("alpha");
    obs::counter_add("widgets", 3);
  }
  {
    obs::Scope scope("beta");
    obs::Scope inner("beta.inner");
    obs::counter_add("inner.items", 7);
  }
  {
    obs::Scope scope("alpha");  // second call of the same phase
    obs::counter_add("widgets", 2);
  }
  obs::stop();
  obs::ProfileData prof = obs::collect();

  // Two phases in first-start order; "beta.inner" is depth 1, not a phase.
  ASSERT_EQ(prof.phases.size(), 2u);
  EXPECT_EQ(prof.phases[0].name, "alpha");
  EXPECT_EQ(prof.phases[0].calls, 2u);
  EXPECT_EQ(prof.phases[1].name, "beta");
  EXPECT_EQ(prof.phases[1].calls, 1u);

  // Counter attribution: to the innermost open scope.
  EXPECT_EQ(prof.phases[0].counters.at("widgets"), 5u);
  EXPECT_EQ(prof.phases[1].counters.count("inner.items"), 0u);
  // ...but the global counter map sees everything.
  EXPECT_EQ(prof.counters.at("widgets"), 5u);
  EXPECT_EQ(prof.counters.at("inner.items"), 7u);

  // All four scopes (alpha twice) are events; the nested one is depth 1.
  ASSERT_EQ(prof.events.size(), 4u);
  bool saw_inner = false;
  for (const obs::ProfileEvent& e : prof.events) {
    if (e.name == "beta.inner") {
      saw_inner = true;
      EXPECT_EQ(e.depth, 1u);
    } else {
      EXPECT_EQ(e.depth, 0u);
    }
    EXPECT_GE(e.dur_us, 0.0);
  }
  EXPECT_TRUE(saw_inner);

  // Phase wall times are bounded by the session total.
  double phase_sum = 0;
  for (const obs::PhaseSummary& p : prof.phases) phase_sum += p.seconds;
  EXPECT_LE(phase_sum, prof.total_seconds + 1e-6);

  std::string text = prof.summary();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("widgets"), std::string::npos);
  EXPECT_NE(text.find("(phases sum)"), std::string::npos);
}

TEST_F(ObsTest, WorkerThreadsGetOwnTracksNotPhases) {
  obs::start();
  {
    obs::Scope scope("label");  // owner phase
    std::thread worker([] {
      obs::set_thread_name("pool worker 1");
      obs::Scope work("label.wave");
      obs::counter_add("label.nodes", 11);
    });
    worker.join();
  }
  obs::stop();
  obs::ProfileData prof = obs::collect();

  // Only the owner's scope is a phase.
  ASSERT_EQ(prof.phases.size(), 1u);
  EXPECT_EQ(prof.phases[0].name, "label");

  // The worker's scope is an event on a different tid, with its name.
  const obs::ProfileEvent* wave = nullptr;
  std::uint32_t owner_tid = 0;
  for (const obs::ProfileEvent& e : prof.events) {
    if (e.name == "label") owner_tid = e.tid;
    if (e.name == "label.wave") wave = &e;
  }
  ASSERT_NE(wave, nullptr);
  EXPECT_NE(wave->tid, owner_tid);
  EXPECT_EQ(prof.thread_names.at(wave->tid), "pool worker 1");

  // Counters cross thread boundaries into the global map; a worker
  // counter inside a "label.wave" scope does not attribute to "label".
  EXPECT_EQ(prof.counters.at("label.nodes"), 11u);
}

TEST_F(ObsTest, CollectIsRepeatableAndDeterministic) {
  obs::start();
  {
    obs::Scope a("one");
    obs::counter_add("c", 1);
  }
  {
    obs::Scope b("two");
  }
  obs::stop();
  obs::ProfileData first = obs::collect();
  obs::ProfileData second = obs::collect();

  ASSERT_EQ(first.events.size(), second.events.size());
  for (std::size_t i = 0; i < first.events.size(); ++i) {
    EXPECT_EQ(first.events[i].name, second.events[i].name);
    EXPECT_EQ(first.events[i].tid, second.events[i].tid);
    EXPECT_EQ(first.events[i].start_us, second.events[i].start_us);
    EXPECT_EQ(first.events[i].dur_us, second.events[i].dur_us);
  }
  ASSERT_EQ(first.phases.size(), second.phases.size());
  for (std::size_t i = 0; i < first.phases.size(); ++i) {
    EXPECT_EQ(first.phases[i].name, second.phases[i].name);
    EXPECT_EQ(first.phases[i].seconds, second.phases[i].seconds);
    EXPECT_EQ(first.phases[i].calls, second.phases[i].calls);
  }
  EXPECT_EQ(first.counters, second.counters);
}

TEST_F(ObsTest, ChromeTraceJsonIsWellFormed) {
  obs::start();
  obs::set_thread_name("main \"quoted\"");  // exercises escaping
  {
    obs::Scope scope("phase.a");
    obs::counter_add("k", 2);
  }
  obs::stop();
  obs::ProfileData prof = obs::collect();
  std::string json = prof.chrome_trace_json();

  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // thread_name meta
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete event
  EXPECT_NE(json.find("\"name\":\"phase.a\""), std::string::npos);
  EXPECT_NE(json.find("main \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");

  // Structural balance: every opened brace/bracket closes.
  long braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++braces;
    else if (c == '}') --braces;
    else if (c == '[') ++brackets;
    else if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST_F(ObsTest, StartClearsThePreviousSession) {
  obs::start();
  {
    obs::Scope scope("old");
  }
  obs::stop();
  obs::start();
  {
    obs::Scope scope("new");
  }
  obs::stop();
  obs::ProfileData prof = obs::collect();
  ASSERT_EQ(prof.phases.size(), 1u);
  EXPECT_EQ(prof.phases[0].name, "new");
}

TEST_F(ObsTest, DefaultConstructedProfileIsMarkedUncollected) {
  obs::ProfileData prof;
  EXPECT_FALSE(prof.collected);
  EXPECT_TRUE(prof.phases.empty());
}

}  // namespace
}  // namespace dagmap
